"""The server's trust boundary: update validation and quarantine.

Participant replies are hostile input.  A single NaN gradient folded
into ``θ`` poisons every future round; a mis-shaped array crashes the
optimizer; an exploded-norm update (still finite, so ``isfinite`` alone
misses it) drags the supernet arbitrarily far in one step.  The server
therefore validates every arriving update *before* it touches ``θ`` or
``α``:

* :class:`UpdateValidator` — stateless checks against the supernet's
  parameter table: finite reward, known parameter names, exact shape
  match, finite gradients and buffers, and a global gradient-norm limit.
* :class:`QuarantineTracker` — per-participant strike counting.  A
  rejection is a strike; ``strike_limit`` strikes quarantine the
  participant for ``quarantine_rounds`` rounds, doubling (``backoff``)
  on each repeat offence up to ``max_quarantine_rounds``.  Quarantined
  participants are simply not dispatched to — they look offline, so the
  existing soft-synchronisation path absorbs them and the search
  degrades gracefully instead of diverging.  When the sentence expires
  the participant is re-admitted on probation (strikes reset; the next
  rejection cycle quarantines for twice as long).

Telemetry: ``update.rejected`` (with ``reason``),
``participant.quarantined`` (with ``until_round``, ``offense``), and
``participant.readmitted`` events; ``updates.rejected`` /
``quarantine.total`` counters and a ``quarantine.active`` gauge.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.telemetry import Telemetry

__all__ = ["UpdateValidator", "QuarantineTracker"]


class UpdateValidator:
    """Stateless structural checks on one :class:`ParticipantUpdate`.

    Parameters
    ----------
    param_shapes:
        Name → shape table of every supernet parameter; an update may
        cover any subset (sub-models prune), but never an unknown name
        or a wrong shape.
    norm_limit:
        Reject when the global L2 norm over all gradient arrays exceeds
        this; ``0`` disables the check.
    """

    def __init__(
        self, param_shapes: Dict[str, Tuple[int, ...]], norm_limit: float = 1e4
    ):
        if norm_limit < 0:
            raise ValueError(f"norm_limit must be >= 0, got {norm_limit}")
        self._shapes = {name: tuple(shape) for name, shape in param_shapes.items()}
        self.norm_limit = float(norm_limit)

    def validate(self, update) -> Optional[str]:
        """Return a rejection reason, or ``None`` if the update is clean."""
        if not np.isfinite(update.reward):
            return "non_finite_reward"
        total_sq = 0.0
        for name, grad in update.gradients.items():
            expected = self._shapes.get(name)
            if expected is None:
                return "unknown_parameter"
            if tuple(grad.shape) != expected:
                return "shape_mismatch"
            if not np.all(np.isfinite(grad)):
                return "non_finite_gradient"
            if self.norm_limit:
                total_sq += float(np.sum(np.square(grad, dtype=np.float64)))
        if self.norm_limit and math.sqrt(total_sq) > self.norm_limit:
            return "norm_outlier"
        for value in update.buffers.values():
            if not np.all(np.isfinite(value)):
                return "non_finite_buffer"
        return None


class QuarantineTracker:
    """Strike counting and exponential-backoff quarantine per participant."""

    def __init__(
        self,
        strike_limit: int = 3,
        quarantine_rounds: int = 4,
        backoff: float = 2.0,
        max_quarantine_rounds: int = 256,
        telemetry: Optional[Telemetry] = None,
    ):
        if strike_limit < 1:
            raise ValueError(f"strike_limit must be >= 1, got {strike_limit}")
        if quarantine_rounds < 1:
            raise ValueError(
                f"quarantine_rounds must be >= 1, got {quarantine_rounds}"
            )
        if backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {backoff}")
        if max_quarantine_rounds < quarantine_rounds:
            raise ValueError(
                "max_quarantine_rounds must be >= quarantine_rounds, got "
                f"{max_quarantine_rounds} < {quarantine_rounds}"
            )
        self.strike_limit = strike_limit
        self.quarantine_rounds = quarantine_rounds
        self.backoff = backoff
        self.max_quarantine_rounds = max_quarantine_rounds
        self.telemetry = telemetry or Telemetry.disabled()
        self._strikes: Dict[int, int] = {}
        #: participant → first round it is admissible again (exclusive bound)
        self._until: Dict[int, int] = {}
        #: participant → how many times it has been quarantined (backoff exponent)
        self._offenses: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def is_quarantined(self, participant: int, round_t: int) -> bool:
        """Gate dispatch; expiry re-admits (on probation) as a side effect."""
        until = self._until.get(participant)
        if until is None:
            return False
        if round_t >= until:
            del self._until[participant]
            self._strikes[participant] = 0
            if self.telemetry.enabled:
                self.telemetry.emit(
                    "participant.readmitted", participant=participant, round=round_t
                )
                self.telemetry.gauge("quarantine.active", len(self._until))
            return False
        return True

    def record_rejection(self, participant: int, round_t: int) -> Optional[int]:
        """Count one strike; returns the quarantine expiry round if the
        strike limit was just reached, else ``None``."""
        strikes = self._strikes.get(participant, 0) + 1
        self._strikes[participant] = strikes
        if strikes < self.strike_limit:
            return None
        offense = self._offenses.get(participant, 0)
        self._offenses[participant] = offense + 1
        duration = min(
            int(round(self.quarantine_rounds * self.backoff**offense)),
            self.max_quarantine_rounds,
        )
        until = round_t + 1 + duration
        self._until[participant] = until
        self._strikes[participant] = 0
        if self.telemetry.enabled:
            self.telemetry.count("quarantine.total")
            self.telemetry.gauge("quarantine.active", len(self._until))
            self.telemetry.emit(
                "participant.quarantined",
                participant=participant,
                round=round_t,
                until_round=until,
                offense=offense + 1,
            )
        return until

    def record_accepted(self, participant: int) -> None:
        """A clean update wipes accumulated strikes (but not offences)."""
        if self._strikes.get(participant):
            self._strikes[participant] = 0

    @property
    def num_quarantined(self) -> int:
        return len(self._until)

    # ------------------------------------------------------------------
    # Checkpoint support (all keys stringified for JSON)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Dict[str, int]]:
        return {
            "strikes": {str(k): v for k, v in self._strikes.items()},
            "until": {str(k): v for k, v in self._until.items()},
            "offenses": {str(k): v for k, v in self._offenses.items()},
        }

    def load_state_dict(self, state: Dict[str, Dict[str, int]]) -> None:
        self._strikes = {int(k): int(v) for k, v in state.get("strikes", {}).items()}
        self._until = {int(k): int(v) for k, v in state.get("until", {}).items()}
        self._offenses = {int(k): int(v) for k, v in state.get("offenses", {}).items()}
