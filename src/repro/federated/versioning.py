"""Per-parameter version counters for delta-encoded dispatch.

The round hot path re-ships a mostly-unchanged θ slice to every
participant every round: only the parameters of *sampled* operations
receive gradient, so between two dispatches to the same worker the vast
majority of a sub-model's arrays are byte-identical.  This module gives
the server a cheap way to know *which* arrays changed —
:class:`ParameterVersions` bumps a counter per parameter name on every
optimizer step — and gives both ends of a dispatch the shared delta
protocol:

* :func:`split_delta` (server side) partitions a task's state into the
  entries a worker already holds at the current version (shipped as
  name→version *references*) and the entries that must travel in full.
* :func:`resolve_task` (worker side) reassembles the full state from the
  shipped entries plus the worker's persistent ``(name, version)`` cache,
  raising :class:`DeltaCacheMiss` when a referenced version is absent —
  the signal for the server to fall back to a full re-send.

Correctness never depends on cache warmth: a miss, a respawned worker, a
reconnect, or a ``--resume`` all degrade to a full send (and, on resume,
:func:`ParameterVersions.bump_all` invalidates every previously
acknowledged version).  Seeded runs are bit-identical with the protocol
on or off because the reassembled state is array-for-array the same
bytes the server would have shipped in full.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Tuple

import numpy as np

from .participant import LocalStepTask

__all__ = [
    "ParameterVersions",
    "DeltaCacheMiss",
    "split_delta",
    "resolve_task",
]


class ParameterVersions:
    """Monotonic per-parameter version counters.

    Versions start at 1 (so "never acknowledged" — an empty ack map —
    can be represented as version 0 or simply absence) and are bumped
    with :meth:`bump` after every server-side mutation of the named
    arrays (optimizer steps for parameters, aggregation for buffers).
    :meth:`bump_all` invalidates everything at once — used after a
    checkpoint restore, where workers' caches may hold arrays from a
    different timeline.

    Counters live in one contiguous ``int64`` array with a name →
    position index, so whole-model operations (``bump_all``, the
    vectorized :func:`split_delta` gather, arena CoW change detection)
    are single numpy ops instead of per-name dict traffic.  All lookups
    return plain Python ints (wire codecs JSON-encode them directly).
    """

    def __init__(self, names: Iterable[str]):
        self._names: List[str] = list(names)
        self._pos: Dict[str, int] = {
            name: i for i, name in enumerate(self._names)
        }
        if len(self._pos) != len(self._names):
            raise ValueError("duplicate parameter names")
        self._array = np.ones(len(self._names), dtype=np.int64)

    def __getitem__(self, name: str) -> int:
        return int(self._array[self._pos[name]])

    def get(self, name: str, default: int = 0) -> int:
        pos = self._pos.get(name)
        return default if pos is None else int(self._array[pos])

    def bump(self, names: Iterable[str]) -> None:
        """Increment the counters of every name in ``names``.

        Names appearing k times are bumped k times (``np.add.at``);
        unknown names are appended starting at version 1.
        """
        idx: List[int] = []
        for name in names:
            pos = self._pos.get(name)
            if pos is None:
                pos = len(self._names)
                self._names.append(name)
                self._pos[name] = pos
                self._array = np.append(self._array, np.int64(0))
            idx.append(pos)
        if idx:
            np.add.at(self._array, np.asarray(idx, dtype=np.intp), 1)

    def bump_all(self) -> None:
        """Invalidate every parameter (checkpoint restore / resume)."""
        self._array += 1

    def subset(self, names: Iterable[str]) -> Dict[str, int]:
        """Name → current version for exactly ``names`` (dispatch order)."""
        array, pos = self._array, self._pos
        return {name: int(array[pos[name]]) for name in names}

    def snapshot(self) -> Dict[str, int]:
        return {
            name: int(self._array[i]) for i, name in enumerate(self._names)
        }

    def positions(self, names: Iterable[str]) -> np.ndarray:
        """Array positions of ``names`` (for vectorized gathers)."""
        pos = self._pos
        return np.asarray([pos[name] for name in names], dtype=np.intp)

    def values_at(self, positions: np.ndarray) -> np.ndarray:
        """Current counters at precomputed positions (int64 gather)."""
        return self._array[positions]

    def values_for(self, names: Iterable[str]) -> np.ndarray:
        """Current counters for ``names`` in order (int64 array)."""
        return self._array[self.positions(names)]

    def __len__(self) -> int:
        return len(self._names)


class DeltaCacheMiss(KeyError):
    """A task referenced cached parameters the worker does not hold."""

    def __init__(self, missing: Iterable[str]):
        self.missing: List[str] = list(missing)
        super().__init__(
            f"{len(self.missing)} referenced parameter(s) not in cache: "
            + ", ".join(self.missing[:4])
            + ("..." if len(self.missing) > 4 else "")
        )


def split_delta(
    state: Mapping[str, np.ndarray],
    versions: Mapping[str, int],
    acked: Mapping[str, int],
) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
    """Partition ``state`` into (ship-in-full, reference-by-version).

    A parameter may be referenced instead of shipped iff the receiver
    last acknowledged *exactly* the current version — anything older (or
    never acknowledged) travels in full.  Returns ``(delta, refs)``
    where ``refs`` maps name → the version the receiver must look up.

    When ``versions`` is a :class:`ParameterVersions`, both the current
    counters and the ack comparison are gathered as single int64 vector
    ops over the task's names instead of one dict probe per name.
    """
    names = list(state)
    if isinstance(versions, ParameterVersions):
        current = versions.values_for(names)
    else:
        current = np.fromiter(
            (versions[name] for name in names), dtype=np.int64, count=len(names)
        )
    # Sentinel far outside any real version so "never acknowledged"
    # can't collide with a genuine counter value.
    never = -(2**62)
    acked_arr = np.fromiter(
        (acked.get(name, never) for name in names),
        dtype=np.int64,
        count=len(names),
    )
    hit = acked_arr == current
    delta: Dict[str, np.ndarray] = {}
    refs: Dict[str, int] = {}
    for i, (name, value) in enumerate(state.items()):
        if hit[i]:
            refs[name] = int(current[i])
        else:
            delta[name] = value
    return delta, refs


def resolve_task(
    task: LocalStepTask,
    cache: Dict[str, Tuple[int, np.ndarray]],
) -> LocalStepTask:
    """Worker-side delta resolution against a persistent parameter cache.

    ``cache`` maps name → ``(version, array)``.  Shipped entries
    (``task.state``) refresh the cache at their declared versions;
    referenced entries (``task.state_refs``) are looked up and must match
    the referenced version *exactly*, else :class:`DeltaCacheMiss` is
    raised — the worker never trains on a guessed parameter.  Returns a
    task whose ``state`` is complete (refs folded in, ``state_refs``
    cleared) and is safe to hand to ``run_local_step`` unchanged.
    """
    versions = task.state_versions or {}
    for name, value in task.state.items():
        cache[name] = (versions.get(name, 0), value)
    if not task.state_refs:
        if task.state_refs is None:
            return task
        return dataclasses.replace(task, state_refs=None)

    missing = [
        name
        for name, version in task.state_refs.items()
        if name not in cache or cache[name][0] != version
    ]
    if missing:
        raise DeltaCacheMiss(missing)

    merged = dict(task.state)
    for name, version in task.state_refs.items():
        merged[name] = cache[name][1]
    return dataclasses.replace(task, state=merged, state_refs=None)
