"""The federated model-search server (Alg. 1, server side).

Each round the server:

1. snapshots ``θ`` and ``α`` into the staleness memory pools,
2. samples one architecture mask per participant from the policy (Eq. 4-5),
3. prunes the supernet into per-participant :class:`LocalStepTask`
   messages (sub-model state + mask + batch seed) and dispatches them
   through the pluggable execution backend, matching sub-model sizes to
   participant bandwidths (adaptive transmission),
4. collects the updates that arrive this round — fresh ones directly,
   stale ones repaired by delay compensation (Eq. 13, 15) or handled by
   the configured fallback ("use" / "throw"),
5. averages the weight gradients (unsampled operations get zeros), steps
   the supernet optimizer, and applies the REINFORCE step to ``α``.

Hard synchronisation, explicit staleness mixes, and latency-driven soft
synchronisation are all expressed through the pluggable delay model.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.nn as nn
from repro.controller import (
    AlphaOptimizer,
    ArchitecturePolicy,
    MovingAverageBaseline,
    ReinforceEstimator,
)
from repro.controller.policy import softmax_rows
from repro.evaluation import CurveRecorder
from repro.network import BandwidthTrace, round_transmission
from repro.nn import payload_size_bytes, state_size_bytes
from repro.search_space import ArchitectureMask, Genotype, Supernet, derive_genotype
from repro.telemetry import Telemetry
from repro.telemetry.tracing import TraceContext

from .compensation import compensate_alpha_gradient, compensate_weight_gradients
from .executor import ExecutionBackend, SerialBackend
from .memory import MemoryPools
from .participant import LocalStepTask, Participant, ParticipantUpdate
from .synchronization import HardSync
from .validation import QuarantineTracker, UpdateValidator
from .versioning import ParameterVersions

__all__ = ["SearchServerConfig", "RoundResult", "FederatedSearchServer"]

STALENESS_POLICIES = ("compensate", "use", "throw")


@dataclasses.dataclass
class SearchServerConfig:
    """Server hyperparameters; defaults follow Table I."""

    theta_lr: float = 0.025
    theta_momentum: float = 0.9
    theta_weight_decay: float = 3e-4
    theta_grad_clip: float = 5.0
    alpha_lr: float = 0.003
    alpha_weight_decay: float = 1e-4
    alpha_grad_clip: float = 5.0
    baseline_decay: float = 0.99
    staleness_threshold: int = 2
    staleness_policy: str = "compensate"
    compensation_lambda: float = 0.5
    transmission_strategy: str = "adaptive"
    #: also compute the *exact* on-wire size of every dispatched
    #: sub-model (npz container + compression — what the socket
    #: transport actually ships) and report measured transmission
    #: latencies through telemetry, next to the analytic Fig. 7 numbers.
    #: Purely observational: assignment, delays, and results are
    #: unchanged.
    measure_wire_bytes: bool = False
    #: wire precision/compression the measured sizes assume (matches the
    #: socket backend's hello-negotiated options)
    wire_dtype: str = "float64"
    wire_compression: str = "none"
    update_theta: bool = True
    update_alpha: bool = True
    #: fold participants' batch-norm running statistics back into the
    #: supernet (keeps eval-mode evaluation of sampled architectures
    #: meaningful during the search)
    aggregate_bn_stats: bool = True
    #: validate every arriving update (finiteness, shapes, norm) before
    #: it can touch ``θ``/``α``; see :mod:`repro.federated.validation`
    validate_updates: bool = True
    #: reject updates whose global gradient L2 norm exceeds this (0 = off)
    update_norm_limit: float = 1e4
    #: flatten the supernet's parameters/buffers into a contiguous
    #: :class:`repro.nn.ParameterArena`: aggregation accumulates into one
    #: gradient buffer, Θ snapshots become range copies, and
    #: ``state_dict()`` serves read-only views.  Bit-identical to the
    #: dict path — purely a memory-layout/performance switch.
    param_arena: bool = False
    #: rejections before a participant is quarantined
    strike_limit: int = 3
    #: base quarantine length in rounds (doubles per repeat offence)
    quarantine_rounds: int = 4
    #: quarantine-length multiplier per repeat offence
    quarantine_backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.staleness_policy not in STALENESS_POLICIES:
            raise ValueError(
                f"staleness_policy must be one of {STALENESS_POLICIES}, "
                f"got {self.staleness_policy!r}"
            )
        if self.compensation_lambda < 0:
            raise ValueError("compensation_lambda must be non-negative")
        if self.update_norm_limit < 0:
            raise ValueError(
                f"update_norm_limit must be >= 0, got {self.update_norm_limit}"
            )
        if self.strike_limit < 1:
            raise ValueError(f"strike_limit must be >= 1, got {self.strike_limit}")
        if self.quarantine_rounds < 1:
            raise ValueError(
                f"quarantine_rounds must be >= 1, got {self.quarantine_rounds}"
            )
        if self.quarantine_backoff < 1.0:
            raise ValueError(
                f"quarantine_backoff must be >= 1, got {self.quarantine_backoff}"
            )


@dataclasses.dataclass
class RoundResult:
    """Diagnostics of one server round."""

    round_index: int
    mean_reward: float
    num_fresh: int
    num_stale_used: int
    num_dropped: int
    round_duration_s: float
    max_transmission_latency_s: float
    mean_submodel_bytes: float
    policy_entropy: float
    #: dispersion of participant rewards this round (the Fig. 12 error bars)
    reward_std: float = float("nan")
    #: participants unreachable this round (availability model,
    #: quarantine, or injected flaps)
    num_offline: int = 0
    #: arrivals rejected by the validation boundary this round
    num_rejected: int = 0


@dataclasses.dataclass
class _PendingUpdate:
    origin_round: int
    delivery_round: int
    mask: ArchitectureMask
    update: ParticipantUpdate


class _RoundAccumulator:
    """Streaming fold of one round's usable arrivals.

    Holds everything the end-of-round θ/α/BN steps need — the REINFORCE
    estimator, the sparse gradient sum, incrementally folded BN buffer
    sums, rewards, and outcome counters — so updates can be ingested one
    at a time (see :meth:`FederatedSearchServer._ingest_arrival`).  In
    population mode fresh updates fold in as they arrive, without
    staging through the pending queue; the legacy path feeds it the
    round's matured arrivals in queue order, which keeps every
    accumulation in the historical arithmetic order.
    """

    def __init__(self, policy: ArchitecturePolicy):
        self.estimator = ReinforceEstimator(policy)
        self.grad_sum: Dict[str, np.ndarray] = {}
        self.buffer_sums: Dict[str, np.ndarray] = {}
        self.buffer_counts: Dict[str, int] = {}
        self.rewards: List[float] = []
        self.num_arrivals = 0
        self.num_fresh = 0
        self.num_stale = 0
        self.num_dropped = 0
        self.num_rejected = 0
        self.used = 0


class FederatedSearchServer:
    """Coordinates policy, supernet, participants, and synchronisation."""

    def __init__(
        self,
        supernet: Supernet,
        policy: ArchitecturePolicy,
        participants: Sequence[Participant],
        config: Optional[SearchServerConfig] = None,
        delay_model=None,
        rng: Optional[np.random.Generator] = None,
        telemetry: Optional[Telemetry] = None,
        backend: Optional[ExecutionBackend] = None,
        fault_injector=None,
        population=None,
    ):
        if not participants and population is None:
            raise ValueError("at least one participant required")
        if policy.num_edges != supernet.config.num_edges:
            raise ValueError(
                f"policy has {policy.num_edges} edges, supernet expects "
                f"{supernet.config.num_edges}"
            )
        self.supernet = supernet
        self.policy = policy
        self.participants = list(participants)
        #: population-scale mode (a :class:`repro.population.
        #: PopulationManager`, duck-typed): the fixed participant list is
        #: replaced by a registry of lightweight records, and each round
        #: works over a sampled cohort materialised on demand.
        self.population = population
        #: this round's materialised cohort (population mode only);
        #: replaced wholesale every round, so server memory stays
        #: O(cohort), never O(registered population).
        self._cohort: Dict[int, Participant] = {}
        self._cohort_target = 0
        self.config = config or SearchServerConfig()
        self.delay_model = delay_model or HardSync()
        self.rng = rng or np.random.default_rng()
        self.telemetry = telemetry or Telemetry.disabled()
        #: execution engine for participant local steps; local steps are
        #: dispatched as :class:`LocalStepTask` messages and collected as
        #: :class:`ParticipantUpdate` replies, so the backend may run
        #: them serially, on a process pool, or (eventually) on a wire.
        self.backend: ExecutionBackend = backend or SerialBackend(
            self.participants,
            supernet.config,
            telemetry=self.telemetry,
            population=None if population is None else population.context,
        )
        #: optional :class:`repro.faults.FaultInjector` (duck-typed so the
        #: federated layer never imports the faults package); consulted at
        #: round start (crash), online sampling (flap), and reply
        #: collection (corrupt/drop/duplicate).
        self.fault_injector = fault_injector
        #: the trust boundary: arriving updates are validated before they
        #: can touch ``θ``/``α``, and repeat offenders are quarantined.
        self.validator: Optional[UpdateValidator] = (
            UpdateValidator(
                {name: p.data.shape for name, p in supernet.named_parameters()},
                norm_limit=self.config.update_norm_limit,
            )
            if self.config.validate_updates
            else None
        )
        self.quarantine = QuarantineTracker(
            strike_limit=self.config.strike_limit,
            quarantine_rounds=self.config.quarantine_rounds,
            backoff=self.config.quarantine_backoff,
            telemetry=self.telemetry,
        )

        self.theta_optimizer = nn.SGD(
            supernet.parameters(),
            lr=self.config.theta_lr,
            momentum=self.config.theta_momentum,
            weight_decay=self.config.theta_weight_decay,
        )
        self.alpha_optimizer = AlphaOptimizer(
            policy,
            lr=self.config.alpha_lr,
            weight_decay=self.config.alpha_weight_decay,
            grad_clip=self.config.alpha_grad_clip,
        )
        self.baseline = MovingAverageBaseline(decay=self.config.baseline_decay)
        self.pools = MemoryPools(self.config.staleness_threshold)
        self.recorder = CurveRecorder()
        self.round = 0
        self.clock_s = 0.0
        #: which pipeline phase the rounds belong to; the phase runners
        #: in :mod:`repro.core.phases` relabel this ("warmup"/"search")
        #: so telemetry events can be grouped per phase.
        self.phase_label = "search"
        self._pending: List[_PendingUpdate] = []
        self._param_names = [name for name, _ in supernet.named_parameters()]
        #: per-parameter version counters, bumped on every mutation of
        #: the live arrays (optimizer steps, BN aggregation).  They drive
        #: the copy-on-write memory pools and the backends' delta-encoded
        #: dispatch; both degrade to full copies / full sends without
        #: affecting results, so versioning is always on.
        self.versions = ParameterVersions(
            [name for name, _ in supernet.named_parameters()]
            + [name for name, _ in supernet.named_buffers()]
        )
        #: optional flat parameter arena (config.param_arena): rebinds
        #: every supernet parameter/buffer onto one contiguous float64
        #: buffer, so aggregation, CoW snapshots, and serialization work
        #: over ranges instead of per-name dicts.  Values are copied in
        #: unchanged and all arithmetic stays element-wise in the same
        #: order, so seeded results are bit-identical arena on/off.
        self.arena: Optional[nn.ParameterArena] = (
            nn.ParameterArena.from_module(supernet)
            if self.config.param_arena
            else None
        )
        if self.arena is not None and hasattr(self.backend, "bind_arena"):
            # Backends that pack wire blobs can gather them straight from
            # the arena's contiguous buffer (byte-identical payloads).
            self.backend.bind_arena(self.arena)
        #: preallocated per-name accumulation buffers for the sparse
        #: gradient aggregation (reused across rounds; see _add_gradients)
        self._grad_buffers: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # The round loop (Alg. 1 lines 3-36)
    # ------------------------------------------------------------------
    def run_round(self) -> RoundResult:
        with self.telemetry.span("search.round", round=self.round):
            return self._run_round_inner()

    def _run_round_inner(self) -> RoundResult:
        t = self.round
        # Injected crashes fire before any round-t state or RNG draw, so
        # a checkpoint taken at the end of round t-1 resumes this round
        # bit-identically.
        if self.fault_injector is not None:
            self.fault_injector.maybe_crash(t)
        telemetry = self.telemetry
        telemetry.emit("round_start", round=t, phase=self.phase_label)
        self.pools.save_round(
            t,
            self._theta_state(),
            self.policy.alpha,
            versions=self.versions,
            arena=self.arena,
        )

        if self.population is not None:
            online = self._sample_cohort(t)
        else:
            online = self._sample_online()
        accumulator = _RoundAccumulator(self.policy)
        max_latency = 0.0
        mean_size = 0.0
        round_duration = 0.0
        num_failed = 0
        if online:
            masks, states, sizes, wire_sizes = self._sample_submodels(len(online))
            assignment, max_latency, latencies = self._assign(
                sizes, online, wire_sizes
            )

            tasks: List[LocalStepTask] = []
            tracing = telemetry.enabled and telemetry.tracing
            for slot, k in enumerate(online):
                mask = masks[assignment[slot]]
                state = states[assignment[slot]]
                self.pools.save_mask(t, k, mask)
                trace = None
                if tracing:
                    trace = TraceContext(
                        trace_id=telemetry.trace_id,
                        parent_span_id=telemetry.current_span_id,
                        dispatch_ts=telemetry.now(),
                        profile_ops=telemetry.trace_ops,
                    )
                tasks.append(
                    LocalStepTask(
                        participant_id=k,
                        round_index=t,
                        mask=mask,
                        state=state,
                        batch_seed=self._participant(k).draw_batch_seed(),
                        state_versions=self.versions.subset(state),
                        trace=trace,
                    )
                )
                if telemetry.enabled:
                    telemetry.emit(
                        "dispatch",
                        round=t,
                        participant=k,
                        bytes=sizes[assignment[slot]],
                        latency_s=float(latencies[slot]) if latencies is not None else 0.0,
                    )
                    telemetry.observe("submodel.bytes", sizes[assignment[slot]])

            task_results = self.backend.run_tasks(tasks)

            delivered_sizes: List[float] = []
            delivered_indices: List[int] = []
            compute_times: List[float] = []
            new_items: List[_PendingUpdate] = []
            for slot, result in enumerate(task_results):
                if not result.ok:
                    # Worker crash / timeout: the participant is offline
                    # this round; soft synchronisation absorbs the gap.
                    num_failed += 1
                    if telemetry.enabled:
                        telemetry.count("updates.task_failures")
                        telemetry.emit(
                            "participant_failed",
                            round=t,
                            participant=online[slot],
                            attempts=result.attempts,
                            error=result.error,
                        )
                    continue
                # The injector damages replies here — after the backend
                # returned them (backend-agnostic, deterministic) and
                # before they enter the pending queue.
                updates = [result.update]
                if self.fault_injector is not None:
                    updates = self.fault_injector.transform_update(
                        t, online[slot], result.update
                    )
                for update in updates:
                    new_items.append(
                        _PendingUpdate(
                            origin_round=t,
                            delivery_round=-1,
                            mask=tasks[slot].mask,
                            update=update,
                        )
                    )
                    delivered_sizes.append(sizes[assignment[slot]])
                    delivered_indices.append(online[slot])
                    compute_times.append(update.compute_time_s)

            if delivered_indices:
                delays = self.delay_model.delays(
                    delivered_sizes,
                    np.asarray(compute_times),
                    start_time_s=self.clock_s,
                    participant_indices=delivered_indices,
                )
                for item, tau in zip(new_items, delays.taus):
                    item.delivery_round = t + int(tau)
                round_duration = delays.round_duration_s
            if self.population is not None:
                # Streaming aggregation: a fresh (τ=0) update folds into
                # the round accumulator the moment its delay is known —
                # the cohort's updates never pile up in the pending
                # queue, so per-round transients stay O(cohort) however
                # large the population grows.  Only genuinely delayed
                # updates stage through ``_pending``.
                for item in new_items:
                    if item.delivery_round == t:
                        self._ingest_arrival(t, accumulator, item)
                    else:
                        self._pending.append(item)
            else:
                self._pending.extend(new_items)
            mean_size = float(np.mean(sizes))

        expected = (
            self._cohort_target
            if self.population is not None
            else len(self.participants)
        )
        num_offline = expected - len(online) + num_failed
        result = self._apply_arrivals(
            t, accumulator, max_latency, mean_size, round_duration, num_offline
        )
        self.pools.evict_older_than(t)
        self.clock_s += round_duration
        self.round += 1
        if telemetry.enabled:
            telemetry.count("rounds.total")
            telemetry.count("updates.offline_slots", num_offline)
            telemetry.observe("round.duration_s", round_duration)
            telemetry.observe("transmission.max_latency_s", max_latency)
            telemetry.observe("policy.entropy", result.policy_entropy)
            if np.isfinite(result.mean_reward):
                telemetry.observe("reward", result.mean_reward)
            telemetry.gauge("clock.simulated_s", self.clock_s)
            telemetry.gauge("round.index", self.round)
            telemetry.emit(
                "round_end",
                round=t,
                phase=self.phase_label,
                mean_reward=None if not np.isfinite(result.mean_reward) else result.mean_reward,
                num_fresh=result.num_fresh,
                num_stale_used=result.num_stale_used,
                num_dropped=result.num_dropped,
                num_rejected=result.num_rejected,
                num_offline=num_offline,
                duration_s=round_duration,
                max_latency_s=max_latency,
            )
        return result

    def _sample_online(self) -> List[int]:
        """Which participants are reachable this round.

        Models the paper's motivating failure ("a participant loses
        connection with the server"): each participant is online with its
        configured availability.  With soft synchronisation the search
        proceeds regardless; a blocking implementation would hang here.

        Quarantined participants and injected availability flaps are
        treated exactly like natural disconnects: the participant simply
        isn't dispatched to and counts toward ``num_offline``.
        """
        online = []
        t = self.round
        for k, participant in enumerate(self.participants):
            if self.quarantine.is_quarantined(k, t):
                continue
            if self.fault_injector is not None and self.fault_injector.force_offline(
                t, k
            ):
                continue
            if participant.availability >= 1.0 or self.rng.random() < participant.availability:
                online.append(k)
        return online

    def _sample_cohort(self, t: int) -> List[int]:
        """Population mode's counterpart of :meth:`_sample_online`.

        Advances churn, draws the cohort (both inside the population
        manager's private RNG streams — the server RNG is untouched, so
        population-off runs are bit-identical to before), filters
        quarantined / fault-flapped members, and materialises the
        survivors.  There are no per-participant availability draws:
        churn dropout flaps *are* the availability model at population
        scale, which keeps server RNG consumption O(cohort) instead of
        O(population).
        """
        cohort = self.population.begin_round(t)
        self._cohort_target = int(len(cohort))
        online: List[int] = []
        for member in cohort:
            k = int(member)
            if self.quarantine.is_quarantined(k, t):
                continue
            if self.fault_injector is not None and self.fault_injector.force_offline(
                t, k
            ):
                continue
            online.append(k)
        self._cohort = self.population.materialize_cohort(online)
        provision = getattr(self.backend, "provision", None)
        if provision is not None:
            # Serial backend: reuse the server-materialised participants
            # (distributed backends derive specs worker-side instead).
            provision(list(self._cohort.values()))
        return online

    def _participant(self, k: int) -> Participant:
        """This round's live object for participant ``k`` (cohort-aware)."""
        if self.population is not None:
            return self._cohort[k]
        return self.participants[k]

    def run(self, rounds: int) -> List[RoundResult]:
        """Convenience loop; returns per-round diagnostics."""
        return [self.run_round() for _ in range(rounds)]

    def derive(self) -> Genotype:
        """Decode the current policy into the searched architecture."""
        return derive_genotype(self.policy.alpha)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _sample_submodels(
        self, count: int
    ) -> Tuple[
        List[ArchitectureMask],
        List[Dict[str, np.ndarray]],
        List[float],
        Optional[List[float]],
    ]:
        """Sample ``count`` masks and materialise their sub-model states.

        The states are built exactly once here and reused by the task
        builder (they hold *live* references into the supernet — see
        :meth:`Supernet.submodel_state` — so no copying happens on the
        dispatch path; every consumer copies before mutating).
        """
        masks = [self.policy.sample_mask() for _ in range(count)]
        states = [self.supernet.submodel_state(mask) for mask in masks]
        sizes = [float(state_size_bytes(state)) for state in states]
        wire_sizes = None
        if self.config.measure_wire_bytes:
            wire_sizes = [
                float(
                    payload_size_bytes(
                        state,
                        compressed=self.config.wire_compression == "zlib",
                        dtype=self.config.wire_dtype,
                    )
                )
                for state in states
            ]
            if self.telemetry.enabled:
                for wire_size in wire_sizes:
                    self.telemetry.observe("transmission.wire_bytes", wire_size)
        return masks, states, sizes, wire_sizes

    def _assign(
        self,
        sizes: Sequence[float],
        online: Sequence[int],
        wire_sizes: Optional[Sequence[float]] = None,
    ) -> Tuple[np.ndarray, float, Optional[np.ndarray]]:
        traces = [self._participant(k).trace for k in online]
        if any(trace is None for trace in traces):
            return np.arange(len(online)), 0.0, None
        report = round_transmission(
            sizes,
            traces,
            strategy=self.config.transmission_strategy,
            start_time=self.clock_s,
            rng=self.rng,
            wire_sizes_bytes=wire_sizes,
        )
        if report.wire_latencies_s is not None and self.telemetry.enabled:
            # Measured counterpart of the analytic Fig. 7 latency: the
            # same assignment, real container bytes on the wire.
            self.telemetry.observe(
                "transmission.wire_max_latency_s", report.max_wire_latency_s
            )
            self.telemetry.emit(
                "transmission.wire",
                round=self.round,
                max_latency_s=report.max_latency_s,
                wire_max_latency_s=report.max_wire_latency_s,
                wire_bytes_total=float(np.sum(report.wire_bytes)),
            )
        return report.assignment, report.max_latency_s, report.latencies_s

    def _theta_state(self) -> Dict[str, np.ndarray]:
        return {name: p.data for name, p in self.supernet.named_parameters()}

    def _apply_arrivals(
        self,
        t: int,
        accumulator: _RoundAccumulator,
        max_latency: float,
        mean_size: float,
        round_duration: float,
        num_offline: int = 0,
    ) -> RoundResult:
        """Fold the round's matured pending arrivals and close the round.

        The accumulator may already hold this round's fresh updates
        (population mode streams them in at collection time); the legacy
        path arrives here with an empty accumulator, so ingesting the
        matured queue entries in order reproduces the historical
        arithmetic exactly.
        """
        arrivals = [p for p in self._pending if p.delivery_round == t]
        self._pending = [p for p in self._pending if p.delivery_round > t]
        for item in arrivals:
            self._ingest_arrival(t, accumulator, item)

        acc = accumulator
        telemetry = self.telemetry
        if acc.num_arrivals and acc.used == 0:
            # Every arrival this round was rejected or dropped: skip the
            # θ/α steps entirely (an all-garbage round must not move the
            # model) and flag the round as degraded.
            if telemetry.enabled:
                telemetry.count("rounds.degraded")
            telemetry.emit(
                "round.degraded",
                round=t,
                num_arrivals=acc.num_arrivals,
                num_rejected=acc.num_rejected,
                num_dropped=acc.num_dropped,
            )
        if acc.used and self.config.update_theta:
            self._step_theta(acc.grad_sum, acc.used)
        if acc.used and self.config.aggregate_bn_stats:
            self._apply_buffer_sums(acc.buffer_sums, acc.buffer_counts)
        if acc.used and self.config.update_alpha:
            alpha_grad = acc.estimator.gradient()
            if telemetry.enabled:
                norm = float(np.linalg.norm(alpha_grad))
                telemetry.observe("alpha.grad_norm", norm)
                telemetry.emit(
                    "alpha_step", round=t, grad_norm=norm, num_updates=acc.used
                )
            self.alpha_optimizer.step(alpha_grad)
        rewards = acc.rewards
        if rewards:
            self.baseline.update(rewards)

        num_fresh = acc.num_fresh
        num_stale = acc.num_stale
        num_dropped = acc.num_dropped
        num_rejected = acc.num_rejected
        mean_reward = float(np.mean(rewards)) if rewards else float("nan")
        reward_std = float(np.std(rewards)) if rewards else float("nan")
        self.recorder.record("train_accuracy", mean_reward if rewards else 0.0)
        self.recorder.record("train_accuracy_std", reward_std if rewards else 0.0)
        self.recorder.record("round_duration_s", round_duration)
        self.recorder.record("max_transmission_latency_s", max_latency)
        self.recorder.record("policy_entropy", self.policy.entropy())
        self._record_operation_preferences()
        return RoundResult(
            round_index=t,
            mean_reward=mean_reward,
            num_fresh=num_fresh,
            num_stale_used=num_stale,
            num_dropped=num_dropped,
            round_duration_s=round_duration,
            max_transmission_latency_s=max_latency,
            mean_submodel_bytes=mean_size,
            policy_entropy=self.policy.entropy(),
            reward_std=reward_std,
            num_offline=num_offline,
            num_rejected=num_rejected,
        )

    def _ingest_arrival(
        self, t: int, acc: _RoundAccumulator, item: _PendingUpdate
    ) -> None:
        """Fold one arrived update into the round accumulator.

        This is the per-arrival body of the historical aggregation loop:
        validation first (the trust boundary — garbage earns a strike
        even when it arrived stale), then the fresh / stale-compensated
        / dropped outcome.  Calling it per arrival is what makes the
        aggregation *streaming*: gradients land in the (arena) gradient
        buffer and BN sums fold incrementally, in arrival order, so the
        end-of-round steps only divide and apply.
        """
        acc.num_arrivals += 1
        tau = t - item.origin_round
        telemetry = self.telemetry
        reason = (
            self.validator.validate(item.update)
            if self.validator is not None
            else None
        )
        if reason is not None:
            acc.num_rejected += 1
            self.quarantine.record_rejection(item.update.participant_id, t)
            if telemetry.enabled:
                telemetry.count("updates.rejected")
                telemetry.count(f"updates.rejected.{reason}")
                telemetry.emit(
                    "update.rejected",
                    round=t,
                    origin_round=item.origin_round,
                    participant=item.update.participant_id,
                    staleness=tau,
                    reason=reason,
                )
            return
        if tau == 0:
            self._accumulate_fresh(item, acc.estimator, acc.grad_sum)
            acc.rewards.append(item.update.reward)
            self._fold_buffers(acc, item.update)
            acc.num_fresh += 1
            acc.used += 1
            outcome = "fresh"
        elif tau > self.config.staleness_threshold or (
            self.config.staleness_policy == "throw"
        ):
            acc.num_dropped += 1
            outcome = "dropped"
        elif not self.pools.has_round(item.origin_round):
            acc.num_dropped += 1
            outcome = "dropped"
        else:
            self._accumulate_stale(item, tau, acc.estimator, acc.grad_sum)
            acc.rewards.append(item.update.reward)
            self._fold_buffers(acc, item.update)
            acc.num_stale += 1
            acc.used += 1
            outcome = (
                "stale_used"
                if self.config.staleness_policy == "use"
                else "stale_compensated"
            )
        if outcome != "dropped":
            self.quarantine.record_accepted(item.update.participant_id)
        if telemetry.enabled:
            telemetry.count(
                f"updates.{'stale_used' if outcome.startswith('stale') else outcome}"
            )
            telemetry.observe("update.staleness", tau)
            telemetry.emit(
                "arrival",
                round=t,
                origin_round=item.origin_round,
                participant=item.update.participant_id,
                staleness=tau,
                outcome=outcome,
                reward=item.update.reward,
            )

    def _fold_buffers(self, acc: _RoundAccumulator, update: ParticipantUpdate) -> None:
        """Accumulate one used update's BN running stats into the round sums.

        Same first-copy-then-add arithmetic (and the same order — used
        updates, as they are accepted) as the former per-round
        ``_aggregate_buffers`` loop, so results are bit-identical.
        """
        if not self.config.aggregate_bn_stats:
            return
        sums = acc.buffer_sums
        counts = acc.buffer_counts
        for name, value in update.buffers.items():
            if name in sums:
                sums[name] = sums[name] + value
                counts[name] += 1
            else:
                sums[name] = np.array(value, copy=True)
                counts[name] = 1

    def _accumulate_fresh(
        self,
        item: _PendingUpdate,
        estimator: ReinforceEstimator,
        grad_sum: Dict[str, np.ndarray],
    ) -> None:
        self._add_gradients(grad_sum, item.update.gradients)
        advantage = self.baseline.advantage(item.update.reward)
        estimator.add(item.mask, advantage)

    def _accumulate_stale(
        self,
        item: _PendingUpdate,
        tau: int,
        estimator: ReinforceEstimator,
        grad_sum: Dict[str, np.ndarray],
    ) -> None:
        stale_round = item.origin_round
        stale_alpha = self.pools.alpha(stale_round)
        advantage = self.baseline.advantage(item.update.reward)
        # ∇ log p(g^{t'}) under the stale α (what the straggler sampled).
        onehot = item.mask.as_onehot()
        stale_grad_logp = onehot - softmax_rows(stale_alpha)

        if self.config.staleness_policy == "use":
            estimator.add_gradient_term(advantage * stale_grad_logp)
            self._add_gradients(grad_sum, item.update.gradients)
            return

        # Delay-compensated path (Alg. 1 lines 25-28).
        lam = self.config.compensation_lambda
        repaired_logp = compensate_alpha_gradient(
            stale_grad_logp, self.policy.alpha, stale_alpha, lam
        )
        estimator.add_gradient_term(advantage * repaired_logp)

        stale_theta = self.pools.theta(stale_round)
        fresh_theta = self._theta_state()
        names = list(item.update.gradients)
        repaired = compensate_weight_gradients(
            item.update.gradients,
            {name: fresh_theta[name] for name in names},
            {name: stale_theta[name] for name in names},
            lam,
        )
        self._add_gradients(grad_sum, repaired)

    def _add_gradients(
        self, grad_sum: Dict[str, np.ndarray], gradients: Dict[str, np.ndarray]
    ) -> None:
        """Accumulate sparse per-name gradients in place.

        Updates only carry gradients for sampled parameters, so the sum
        stays name-sparse — no dense zero-filled dicts are ever built.
        The first arrival for a name lands in a preallocated per-name
        buffer (reused across rounds) via ``np.copyto``; later arrivals
        add in place.  Float64 addition order is unchanged, so results
        are bit-identical to the previous copy-then-add accumulation.

        With the parameter arena on, that first-arrival buffer *is* the
        arena's contiguous gradient window for the name, so the round's
        accumulated gradient materialises directly in the flat buffer
        (averaged later with merged-range vector ops in _step_theta).
        Names the arena doesn't own — or whose shape disagrees, e.g. a
        corrupt update with validation off — keep the detached per-name
        fallback buffers.
        """
        buffers = self._grad_buffers
        arena = self.arena
        for name, grad in gradients.items():
            if name in grad_sum:
                grad_sum[name] += grad
            else:
                buf = None
                if arena is not None:
                    view = arena.grad_view(name)
                    if (
                        view is not None
                        and view.shape == grad.shape
                        and view.dtype == grad.dtype
                    ):
                        buf = view
                if buf is None:
                    buf = buffers.get(name)
                    if buf is None or buf.shape != grad.shape or buf.dtype != grad.dtype:
                        buf = np.empty_like(grad)
                        buffers[name] = buf
                np.copyto(buf, grad)
                grad_sum[name] = buf

    def _record_operation_preferences(self) -> None:
        """Track which operations the policy currently prefers.

        One series per candidate operation: the fraction of edges (over
        both cell types) whose argmax is that operation.  Useful for
        diagnosing collapse (e.g. ``none``/skip dominance) during long
        searches.
        """
        from repro.search_space import PRIMITIVES

        modes = self.policy.probabilities().argmax(axis=-1)
        for index, name in enumerate(PRIMITIVES):
            self.recorder.record(
                f"op_preference/{name}", float(np.mean(modes == index))
            )

    def _apply_buffer_sums(
        self, sums: Dict[str, np.ndarray], counts: Dict[str, int]
    ) -> None:
        """Average the round's accumulated BN stats back into the supernet.

        The sums arrive pre-folded (see :meth:`_fold_buffers`); only
        buffers present in at least one used update move — buffers of
        never-sampled operations keep their previous values.
        """
        owners = self.supernet._named_buffer_owners()
        arena = self.arena
        touched = []
        for name, total in sums.items():
            if name in owners:
                value = total / counts[name]
                if (
                    arena is not None
                    and arena.has(name)
                    and arena.view(name).shape == value.shape
                ):
                    # In-place write keeps the buffer bound to the arena
                    # (replacing the array would detach the view).
                    arena.write(name, value)
                else:
                    module, local = owners[name]
                    module._set_buffer(local, value)
                touched.append(name)
        self.versions.bump(touched)

    def evaluate_architecture(
        self, dataset, mask: Optional[ArchitectureMask] = None, batch_size: int = 64
    ) -> float:
        """Eval-mode accuracy of an architecture under the current supernet.

        Defaults to the policy's most likely architecture.  Meaningful
        batch-norm statistics require ``aggregate_bn_stats`` (on by
        default); with it off, buffers stay at initialisation and this
        returns near-chance accuracy.
        """
        from repro.evaluation import evaluate_accuracy

        mask = mask or self.policy.mode_mask()
        submodel = self.supernet.extract_submodel(mask, rng=self.rng)
        return evaluate_accuracy(submodel, dataset, batch_size=batch_size)

    def _step_theta(self, grad_sum: Dict[str, np.ndarray], count: int) -> None:
        """Average accumulated gradients (zeros for unsampled ops), clip,
        and step the supernet optimizer.

        A zero-update round (every arrival rejected or dropped) is a
        no-op: stepping would divide by zero and apply pure weight decay
        where the round produced no information.
        """
        if count == 0:
            return
        self.theta_optimizer.zero_grad()
        # Arena-owned sums are averaged in place over merged contiguous
        # ranges of the flat gradient buffer (``/=`` is the same
        # element-wise ufunc as ``/``, so bit-identical); anything else
        # keeps the per-name divide-into-a-copy path.
        owned = (
            self.arena.average_grads(grad_sum, count)
            if self.arena is not None
            else frozenset()
        )
        for name, param in self.supernet.named_parameters():
            if name in grad_sum:
                grad = grad_sum[name]
                param.grad = grad if name in owned else grad / count
        norm = nn.clip_grad_norm(
            self.supernet.parameters(), self.config.theta_grad_clip
        )
        if self.telemetry.enabled:
            self.telemetry.observe("theta.grad_norm", norm)
            self.telemetry.emit(
                "theta_step", round=self.round, grad_norm=norm, num_updates=count
            )
        self.theta_optimizer.step()
        # The optimizer mutates exactly the parameters that received
        # gradient this round (SGD skips grad-less parameters entirely).
        self.versions.bump(grad_sum)
