"""Staleness memory pools Θ, 𝔸, 𝔾 (Alg. 1 lines 4, 7, 25, 34-35).

The server snapshots the supernet weights, the architecture parameters,
and each participant's sampled binary mask at the start of every round.
When a straggler's update arrives ``τ`` rounds late, the pools supply the
stale ``θ^{t'}``, ``α^{t'}``, and ``g^{t'}`` the update was computed
against, which the delay-compensation equations need.  Entries older than
the staleness threshold ``Δ`` are evicted — their updates would be thrown
away anyway.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn import clone_state, cow_clone_state
from repro.search_space import ArchitectureMask

__all__ = ["MemoryPools"]


class MemoryPools:
    """Bounded per-round snapshots of ``θ``, ``α``, and masks ``g``.

    θ snapshots are copy-on-write when the caller supplies per-parameter
    versions: consecutive rounds share the frozen copies of parameters
    that did not change between them (only the ~1/N sampled slice
    receives gradient each round), so pool memory scales with *changed*
    parameters × window instead of full θ × window.  Without versions
    (e.g. during checkpoint restore) every save is a plain deep copy.
    """

    def __init__(self, staleness_threshold: int):
        if staleness_threshold < 0:
            raise ValueError(
                f"staleness threshold must be >= 0, got {staleness_threshold}"
            )
        self.staleness_threshold = staleness_threshold
        self._theta: Dict[int, Dict[str, np.ndarray]] = {}
        self._alpha: Dict[int, np.ndarray] = {}
        self._masks: Dict[int, Dict[int, ArchitectureMask]] = {}
        #: name → (version, frozen copy) shared across rounds (CoW).
        self._cow_cache: Dict[str, tuple] = {}

    # ------------------------------------------------------------------
    # Saving (Alg. 1 lines 4, 7)
    # ------------------------------------------------------------------
    def save_round(
        self,
        round_t: int,
        theta: Dict[str, np.ndarray],
        alpha: np.ndarray,
        versions=None,
        arena=None,
    ) -> None:
        if versions is None:
            self._theta[round_t] = clone_state(theta)
        elif arena is not None:
            # Flat-arena CoW: changed entries are copied as merged
            # contiguous ranges of the flat buffer instead of one
            # ndarray.copy per name; unchanged entries share the
            # previously frozen windows exactly like cow_clone_state.
            self._theta[round_t] = arena.cow_snapshot(versions)
        else:
            self._theta[round_t] = cow_clone_state(
                theta, versions, self._cow_cache
            )
        self._alpha[round_t] = np.array(alpha, copy=True)
        self._masks.setdefault(round_t, {})

    def save_mask(self, round_t: int, participant: int, mask: ArchitectureMask) -> None:
        self._masks.setdefault(round_t, {})[participant] = mask

    # ------------------------------------------------------------------
    # Retrieval (Alg. 1 line 25)
    # ------------------------------------------------------------------
    def theta(self, round_t: int) -> Dict[str, np.ndarray]:
        return self._require(self._theta, round_t, "θ")

    def alpha(self, round_t: int) -> np.ndarray:
        return self._require(self._alpha, round_t, "α")

    def mask(self, round_t: int, participant: int) -> ArchitectureMask:
        masks = self._require(self._masks, round_t, "g")
        if participant not in masks:
            raise KeyError(
                f"no mask saved for participant {participant} at round {round_t}"
            )
        return masks[participant]

    def has_round(self, round_t: int) -> bool:
        return round_t in self._theta

    def rounds(self) -> list:
        """Rounds currently held, ascending (checkpoint serialization)."""
        return sorted(self._theta)

    def masks_for(self, round_t: int) -> Dict[int, ArchitectureMask]:
        """Participant → mask map for ``round_t`` (may be empty)."""
        return dict(self._masks.get(round_t, {}))

    # ------------------------------------------------------------------
    # Eviction (Alg. 1 lines 34-35)
    # ------------------------------------------------------------------
    def evict_older_than(self, round_t: int) -> int:
        """Drop snapshots from rounds < ``round_t − Δ``; returns count."""
        horizon = round_t - self.staleness_threshold
        stale_rounds = [r for r in self._theta if r < horizon]
        for r in stale_rounds:
            self._theta.pop(r, None)
            self._alpha.pop(r, None)
            self._masks.pop(r, None)
        return len(stale_rounds)

    def __len__(self) -> int:
        return len(self._theta)

    @staticmethod
    def _require(pool: Dict, round_t: int, what: str):
        if round_t not in pool:
            raise KeyError(
                f"{what} for round {round_t} not in memory "
                f"(evicted or never saved); available: {sorted(pool)}"
            )
        return pool[round_t]
