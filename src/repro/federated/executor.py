"""Pluggable execution engines for participant local steps.

The server round loop produces a list of :class:`~repro.federated.participant.LocalStepTask`
messages and hands them to an :class:`ExecutionBackend`; the backend
returns one :class:`TaskResult` per task, **in task order**, each
carrying either the participant's :class:`~repro.federated.participant.ParticipantUpdate`
or a failure record.  Three backends ship:

* :class:`SerialBackend` — runs every task in-process, in order.  This
  is the default and matches the historical single-process behaviour.
* :class:`ProcessPoolBackend` — a ``multiprocessing`` pool whose workers
  are initialised **once** with the (immutable) shard data and supernet
  geometry; per round only the tasks travel.  Tasks get a per-task
  timeout and one retry; a worker crash or repeated timeout degrades the
  participant to *offline for that round* (feeding the existing
  soft-synchronisation path) instead of killing the search.
* :class:`repro.transport.SocketBackend` — the networked runtime: worker
  daemons (``python -m repro serve``) over TCP with the same failure
  semantics, built via ``build_backend("socket", ...)``.

Determinism contract: every source of randomness a local step consumes is
inside the task (``batch_seed``, ``mask``, ``state``), so seeded runs are
bit-identical across backends regardless of worker scheduling.  The
equivalence is enforced by ``tests/test_executor.py``.

Telemetry: backends emit ``executor.dispatch`` / ``executor.task_retry``
/ ``executor.worker_crash`` events, per-task queue/compute timing
histograms (``executor.task_queue_s`` / ``executor.task_compute_s``),
and an ``executor.inflight`` gauge.  Worker processes run without
telemetry (spans cannot cross process boundaries); all events are
emitted from the coordinating process.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import os
import time
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.data import ArrayDataset, Compose
from repro.search_space import SupernetConfig
from repro.telemetry import Telemetry
from repro.telemetry.tracing import SpanRecorder, emit_task_trace, null_span

from .participant import (
    GTX_1080TI,
    DeviceProfile,
    LocalStepTask,
    Participant,
    ParticipantUpdate,
    run_local_step,
)
from .versioning import DeltaCacheMiss, resolve_task, split_delta

__all__ = [
    "BACKENDS",
    "ParticipantSpec",
    "TaskResult",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "build_backend",
]

#: Names accepted by :func:`build_backend`, ``ExperimentConfig.backend``,
#: and the CLI ``--backend`` flag.  ``socket`` is the networked runtime
#: (:mod:`repro.transport`): worker daemons over TCP.
BACKENDS = ("serial", "process", "socket")


@dataclasses.dataclass(frozen=True)
class ParticipantSpec:
    """The immutable, picklable slice of a participant workers need.

    Worker processes never see live :class:`Participant` objects (those
    hold RNG state, traces, and telemetry handles that must stay in the
    coordinator); they get the data shard and the static step physics.
    """

    participant_id: int
    dataset: ArrayDataset
    batch_size: int
    transform: Optional[Compose] = None
    device: DeviceProfile = GTX_1080TI

    @staticmethod
    def from_participant(participant: Participant) -> "ParticipantSpec":
        return ParticipantSpec(
            participant_id=participant.participant_id,
            dataset=participant.dataset,
            batch_size=participant.loader.batch_size,
            transform=participant.loader.transform,
            device=participant.device,
        )


@dataclasses.dataclass
class TaskResult:
    """Outcome of one dispatched task.

    ``update is None`` means the task failed permanently (worker crash,
    repeated timeout, or repeated exception); the server records the
    participant as offline for the round.
    """

    participant_id: int
    update: Optional[ParticipantUpdate]
    attempts: int = 1
    error: Optional[str] = None
    #: wall-clock seconds the task spent waiting before compute started
    queue_s: float = 0.0
    #: wall-clock seconds of actual compute (as measured by the executor)
    compute_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.update is not None


class ExecutionBackend(Protocol):
    """What the server requires of an execution engine."""

    #: short name surfaced in telemetry and reports ("serial", "process")
    name: str

    def run_tasks(self, tasks: Sequence[LocalStepTask]) -> List[TaskResult]:
        """Execute ``tasks``, returning results in task order."""
        ...

    def close(self) -> None:
        """Release worker resources.  Idempotent; backends may lazily
        re-acquire them if used again afterwards."""
        ...


class SerialBackend:
    """In-process, in-order execution — the reference backend.

    ``fault_hook`` mirrors :class:`ProcessPoolBackend`'s injection point
    (called with each task before execution) so chaos/latency experiments
    can compare backends apples-to-apples; unlike the process backend a
    hook failure here propagates, since there is no worker boundary to
    absorb it.
    """

    name = "serial"

    def __init__(
        self,
        participants: Sequence[Participant],
        supernet_config: SupernetConfig,
        telemetry: Optional[Telemetry] = None,
        fault_hook: Optional[Callable[[LocalStepTask], None]] = None,
        population: Optional[object] = None,
    ):
        self._participants = {p.participant_id: p for p in participants}
        self._supernet_config = supernet_config
        self.telemetry = telemetry or Telemetry.disabled()
        self._fault_hook = fault_hook
        #: population spec source (``repro.population.PopulationContext``,
        #: duck-typed): lets :meth:`provision` swap in per-round cohorts.
        self._population = population

    def provision(self, participants: Sequence[Participant]) -> None:
        """Install this round's materialised cohort (population mode).

        The server materialises cohort participants anyway (it owns
        their batch-seed counters), so the serial backend reuses those
        live objects instead of re-deriving shards — the working set is
        exactly one cohort, never the whole population.
        """
        self._participants = {p.participant_id: p for p in participants}

    def run_tasks(self, tasks: Sequence[LocalStepTask]) -> List[TaskResult]:
        telemetry = self.telemetry
        results: List[TaskResult] = []
        for position, task in enumerate(tasks):
            if telemetry.enabled:
                telemetry.gauge("executor.inflight", len(tasks) - position)
                telemetry.emit(
                    "executor.dispatch",
                    backend=self.name,
                    round=task.round_index,
                    participant=task.participant_id,
                )
            start = time.perf_counter()
            if self._fault_hook is not None:
                self._fault_hook(task)
            recorder = None
            dispatch_ts = 0.0
            if task.trace is not None:
                dispatch_ts = telemetry.now()
                recorder = SpanRecorder(profile_ops=task.trace.profile_ops)
            try:
                update = self._participants[task.participant_id].execute_task(
                    task, self._supernet_config, recorder=recorder
                )
            except BaseException:
                if recorder is not None:
                    recorder.abort()
                raise
            if recorder is not None:
                update.spans = recorder.payload()
                emit_task_trace(
                    telemetry,
                    backend=self.name,
                    task=task,
                    update=update,
                    dispatch_ts=dispatch_ts,
                    receive_ts=telemetry.now(),
                    worker="local",
                )
            wall = time.perf_counter() - start
            if telemetry.enabled:
                telemetry.observe("executor.task_queue_s", 0.0)
                telemetry.observe("executor.task_compute_s", wall)
            results.append(
                TaskResult(task.participant_id, update, attempts=1, compute_s=wall)
            )
        if telemetry.enabled:
            telemetry.gauge("executor.inflight", 0)
        return results

    def close(self) -> None:  # nothing to release
        pass


# ----------------------------------------------------------------------
# Process-pool backend
# ----------------------------------------------------------------------

#: Per-worker state installed by :func:`_init_worker` (one copy per
#: worker process; immutable after initialisation).
_WORKER_STATE: Dict[str, object] = {}


def _init_worker(
    specs: Sequence[ParticipantSpec],
    supernet_config: SupernetConfig,
    fault_hook: Optional[Callable[[LocalStepTask], None]],
    population: Optional[object] = None,
) -> None:
    _WORKER_STATE["specs"] = {spec.participant_id: spec for spec in specs}
    _WORKER_STATE["supernet_config"] = supernet_config
    _WORKER_STATE["fault_hook"] = fault_hook
    # Population mode: workers receive the shared derivation context
    # (base dataset + partition recipe) once, instead of O(population)
    # spec lists — any participant's spec is derived on first use.
    _WORKER_STATE["population"] = population
    # (name -> (version, array)) delta-dispatch cache; starts cold in
    # every fresh worker process, so stale entries cannot survive a
    # pool teardown or worker replacement.
    _WORKER_STATE["param_cache"] = {}


#: Most derived specs a worker keeps before evicting the oldest —
#: bounds worker memory to O(cache + params) under heavy churn.
_SPEC_CACHE_LIMIT = 1024


def _worker_spec(participant_id: int) -> ParticipantSpec:
    """Resolve a task's spec: installed map first, else derive from the
    population context (cached FIFO, bounded)."""
    specs: Dict[int, ParticipantSpec] = _WORKER_STATE["specs"]  # type: ignore[assignment]
    spec = specs.get(participant_id)
    if spec is not None:
        return spec
    population = _WORKER_STATE.get("population")
    if population is None:
        raise KeyError(f"no spec for participant {participant_id}")
    spec = population.spec(participant_id)  # type: ignore[attr-defined]
    if len(specs) >= _SPEC_CACHE_LIMIT:
        specs.pop(next(iter(specs)))
    specs[participant_id] = spec
    return spec


#: first element of a worker reply that could not resolve its delta refs
_CACHE_MISS = "__delta_cache_miss__"


def _run_task(task: LocalStepTask):
    """Worker-side task execution.

    Returns ``(update, compute_wall, pid)`` on success, or
    ``(_CACHE_MISS, missing_names, pid)`` when the task referenced cached
    parameters this worker does not hold — the coordinator then re-sends
    the task in full (a full task can never miss).
    """
    pid = os.getpid()
    recorder = None
    if task.trace is not None:
        recorder = SpanRecorder(profile_ops=task.trace.profile_ops)
    span = recorder.span if recorder is not None else null_span
    try:
        if task.state_versions is not None or task.state_refs:
            try:
                with span("deserialize"):
                    task = resolve_task(
                        task, _WORKER_STATE.setdefault("param_cache", {})
                    )
            except DeltaCacheMiss as miss:
                if recorder is not None:
                    recorder.abort()
                return _CACHE_MISS, miss.missing, pid
        hook = _WORKER_STATE.get("fault_hook")
        if hook is not None:
            hook(task)
        spec = _worker_spec(task.participant_id)
        start = time.perf_counter()
        update = run_local_step(
            task,
            spec.dataset,
            spec.batch_size,
            _WORKER_STATE["supernet_config"],  # type: ignore[arg-type]
            transform=spec.transform,
            device=spec.device,
            recorder=recorder,
        )
        wall = time.perf_counter() - start
        if recorder is not None:
            update.spans = recorder.payload()
        return update, wall, pid
    except BaseException:
        # The op hook is process-global in this worker — never leak it.
        if recorder is not None:
            recorder.abort()
        raise


class ProcessPoolBackend:
    """Parallel local steps on a ``multiprocessing`` worker pool.

    Parameters
    ----------
    participants:
        Live participants or pre-built :class:`ParticipantSpec` objects;
        live ones are converted (only their immutable slice travels).
    supernet_config:
        Geometry workers use to rebuild sub-models from task masks.
    num_workers:
        Pool size; ``None``/``0`` picks ``min(#participants, cpu_count)``.
    task_timeout_s:
        Per-attempt deadline (covers queueing + compute, so size it above
        a full round's backlog per worker).
    max_retries:
        Re-dispatches after a timeout or worker exception (default 1).
    fault_hook:
        Optional callable run inside the worker before each task —
        injection point for crash/latency chaos testing.  Must be
        picklable under the chosen start method.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheap, inherits the parent's loaded modules) else
        ``spawn``.
    delta_dispatch:
        Ship only parameters some worker has not acknowledged at their
        current version; workers keep a persistent ``(name, version)``
        cache (see :mod:`repro.federated.versioning`).  Because a pool
        cannot target a specific worker, a parameter is referenced
        instead of shipped only once **every** known worker pid has
        acknowledged its exact current version; anything less travels in
        full.  A cache miss (e.g. a replaced worker) triggers a full
        re-send that does not consume the retry budget.  Off by default;
        results are bit-identical either way.

    The pool is created lazily on first use and torn down by
    :meth:`close`; a closed backend transparently re-creates its pool if
    tasks arrive again.  Dead workers are replaced automatically by
    ``multiprocessing.Pool``, so a crashed worker costs one task timeout,
    not the search.
    """

    name = "process"

    def __init__(
        self,
        participants: Sequence[object],
        supernet_config: SupernetConfig,
        num_workers: Optional[int] = None,
        task_timeout_s: float = 60.0,
        max_retries: int = 1,
        telemetry: Optional[Telemetry] = None,
        fault_hook: Optional[Callable[[LocalStepTask], None]] = None,
        start_method: Optional[str] = None,
        delta_dispatch: bool = False,
        population: Optional[object] = None,
    ):
        if task_timeout_s <= 0:
            raise ValueError(f"task_timeout_s must be positive, got {task_timeout_s}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self._specs = [
            spec
            if isinstance(spec, ParticipantSpec)
            else ParticipantSpec.from_participant(spec)  # type: ignore[arg-type]
            for spec in participants
        ]
        self._population = population
        if not self._specs and population is None:
            raise ValueError("at least one participant required")
        self._supernet_config = supernet_config
        if num_workers:
            self.num_workers = int(num_workers)
        elif self._specs:
            self.num_workers = min(len(self._specs), os.cpu_count() or 2)
        else:
            # Population mode: the working set is the cohort, not the
            # spec list (which is empty) — default to the machine.
            self.num_workers = os.cpu_count() or 2
        if self.num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {self.num_workers}")
        self.task_timeout_s = float(task_timeout_s)
        self.max_retries = int(max_retries)
        self.telemetry = telemetry or Telemetry.disabled()
        self._fault_hook = fault_hook
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(start_method)
        self._pool: Optional[mp.pool.Pool] = None
        self.delta_dispatch = bool(delta_dispatch)
        #: worker pid → name → last acknowledged version
        self._acked: Dict[int, Dict[str, int]] = {}
        #: worker pid → last dispatch round it replied in (for pruning)
        self._pid_last_seen: Dict[int, int] = {}
        self._dispatch_round = 0

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> "mp.pool.Pool":
        if self._pool is None:
            self._pool = self._ctx.Pool(
                processes=self.num_workers,
                initializer=_init_worker,
                initargs=(
                    self._specs,
                    self._supernet_config,
                    self._fault_hook,
                    self._population,
                ),
            )
        return self._pool

    def run_tasks(self, tasks: Sequence[LocalStepTask]) -> List[TaskResult]:
        pool = self._ensure_pool()
        telemetry = self.telemetry
        stats = {"sent": 0, "cached": 0, "full_syncs": 0, "cache_misses": 0}
        if self.delta_dispatch:
            self._dispatch_round += 1
            self._prune_acks()
        submissions = []
        for task in tasks:
            wire_task = self._encode_for_dispatch(task, stats)
            if telemetry.enabled:
                telemetry.emit(
                    "executor.dispatch",
                    backend=self.name,
                    round=task.round_index,
                    participant=task.participant_id,
                )
            submissions.append(
                (
                    wire_task,
                    pool.apply_async(_run_task, (wire_task,)),
                    time.perf_counter(),
                    telemetry.now(),
                )
            )
        if telemetry.enabled:
            telemetry.gauge("executor.inflight", len(tasks))

        results: List[TaskResult] = []
        for position, task in enumerate(tasks):
            wire_task, handle, submitted_at, dispatch_ts = submissions[position]
            results.append(
                self._collect(task, wire_task, handle, submitted_at, dispatch_ts, stats)
            )
            if telemetry.enabled:
                telemetry.gauge("executor.inflight", len(tasks) - position - 1)
        if self.delta_dispatch and telemetry.enabled and tasks:
            total = stats["sent"] + stats["cached"]
            telemetry.count("dispatch.delta_params", stats["sent"])
            telemetry.count("dispatch.cached_params", stats["cached"])
            telemetry.count("dispatch.full_syncs", stats["full_syncs"])
            telemetry.count("dispatch.cache_misses", stats["cache_misses"])
            telemetry.emit(
                "dispatch.round",
                backend=self.name,
                round=tasks[0].round_index,
                tasks=len(tasks),
                params_sent=stats["sent"],
                params_cached=stats["cached"],
                full_syncs=stats["full_syncs"],
                cache_misses=stats["cache_misses"],
                cache_hit=stats["cached"] / total if total else 0.0,
            )
        return results

    def _encode_for_dispatch(
        self, task: LocalStepTask, stats: Dict[str, int]
    ) -> LocalStepTask:
        """Delta-encode ``task`` against the workers' acknowledged versions.

        The pool cannot target a worker, so a parameter may only be
        referenced when *every* known pid acknowledged its exact current
        version (and at least ``num_workers`` pids are known at all).
        """
        if not self.delta_dispatch or task.state_versions is None:
            if task.state_versions is None and not task.state_refs:
                return task
            # Delta off: strip the version metadata so workers skip cache
            # bookkeeping entirely and wire pickles stay minimal.
            return dataclasses.replace(task, state_versions=None, state_refs=None)
        acked_maps = list(self._acked.values())
        if len(acked_maps) < self.num_workers:
            shared: Dict[str, int] = {}
        else:
            shared = dict(acked_maps[0])
            for other in acked_maps[1:]:
                shared = {
                    name: version
                    for name, version in shared.items()
                    if other.get(name) == version
                }
        delta, refs = split_delta(task.state, task.state_versions, shared)
        stats["sent"] += len(delta)
        stats["cached"] += len(refs)
        if not refs:
            stats["full_syncs"] += 1
            return task
        return dataclasses.replace(task, state=delta, state_refs=refs)

    def _prune_acks(self) -> None:
        """Forget pids that stopped replying (replaced pool workers)."""
        horizon = self._dispatch_round - 3
        for pid in [p for p, seen in self._pid_last_seen.items() if seen <= horizon]:
            self._acked.pop(pid, None)
            self._pid_last_seen.pop(pid, None)

    def _record_ack(self, pid: int, task: LocalStepTask) -> None:
        if self.delta_dispatch and task.state_versions is not None:
            # After a successful step the worker's cache holds *every*
            # name in the task at its dispatched version (shipped entries
            # were cached, referenced entries were verified present).
            self._acked.setdefault(pid, {}).update(task.state_versions)
            self._pid_last_seen[pid] = self._dispatch_round

    def _collect(
        self,
        task: LocalStepTask,
        wire_task: LocalStepTask,
        handle,
        submitted_at: float,
        dispatch_ts: float,
        stats: Dict[str, int],
    ) -> TaskResult:
        telemetry = self.telemetry
        attempts = 1
        while True:
            error: str
            try:
                reply = handle.get(timeout=self.task_timeout_s)
                if reply[0] == _CACHE_MISS:
                    # The worker's cache lacked referenced parameters
                    # (fresh or replaced process).  Re-send in full —
                    # this is resynchronisation, not a failure, so it
                    # does not consume the retry budget, and a full task
                    # can never miss again.
                    _, missing, pid = reply
                    stats["cache_misses"] += 1
                    self._acked[pid] = {}
                    self._pid_last_seen[pid] = self._dispatch_round
                    if telemetry.enabled:
                        telemetry.emit(
                            "executor.delta_resync",
                            backend=self.name,
                            round=task.round_index,
                            participant=task.participant_id,
                            missing=len(missing),
                            pid=pid,
                        )
                    wire_task = task
                    handle = self._ensure_pool().apply_async(_run_task, (task,))
                    submitted_at = time.perf_counter()
                    dispatch_ts = telemetry.now()
                    continue
                update, compute_wall, pid = reply
                self._record_ack(pid, wire_task)
                turnaround = time.perf_counter() - submitted_at
                queue_s = max(0.0, turnaround - compute_wall)
                emit_task_trace(
                    telemetry,
                    backend=self.name,
                    task=task,
                    update=update,
                    dispatch_ts=dispatch_ts,
                    receive_ts=telemetry.now(),
                    worker=str(pid),
                )
                if telemetry.enabled:
                    telemetry.observe("executor.task_queue_s", queue_s)
                    telemetry.observe("executor.task_compute_s", compute_wall)
                return TaskResult(
                    task.participant_id,
                    update,
                    attempts=attempts,
                    queue_s=queue_s,
                    compute_s=compute_wall,
                )
            except mp.TimeoutError:
                error = f"task timed out after {self.task_timeout_s:g}s"
            except Exception as exc:  # remote exception or dead worker
                error = f"{type(exc).__name__}: {exc}"
            if attempts > self.max_retries:
                if telemetry.enabled:
                    telemetry.count("executor.worker_crashes")
                    telemetry.emit(
                        "executor.worker_crash",
                        backend=self.name,
                        round=task.round_index,
                        participant=task.participant_id,
                        attempts=attempts,
                        error=error,
                    )
                return TaskResult(
                    task.participant_id, None, attempts=attempts, error=error
                )
            attempts += 1
            if telemetry.enabled:
                telemetry.count("executor.task_retries")
                telemetry.emit(
                    "executor.task_retry",
                    backend=self.name,
                    round=task.round_index,
                    participant=task.participant_id,
                    attempt=attempts,
                    error=error,
                )
            # Retries always re-send the original task in full: the
            # replacement worker may have a cold cache, and a delta task
            # would just bounce with a miss round-trip.
            wire_task = task
            handle = self._ensure_pool().apply_async(_run_task, (task,))
            submitted_at = time.perf_counter()
            dispatch_ts = telemetry.now()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self._acked.clear()
        self._pid_last_seen.clear()


def build_backend(
    name: str,
    participants: Sequence[Participant],
    supernet_config: SupernetConfig,
    num_workers: Optional[int] = None,
    task_timeout_s: float = 60.0,
    task_retries: int = 1,
    telemetry: Optional[Telemetry] = None,
    socket_workers: Optional[Sequence[str]] = None,
    socket_compression: str = "none",
    socket_wire_dtype: str = "float64",
    delta_dispatch: bool = False,
    resilience: Optional[object] = None,
    network_fault_plan: Optional[object] = None,
    rng_seed: int = 0,
    population: Optional[object] = None,
) -> ExecutionBackend:
    """Construct the backend ``name`` ("serial", "process", or "socket").

    ``task_timeout_s`` and ``task_retries`` are shared failure-handling
    policy for every distributed backend (they come straight from
    ``ExperimentConfig``); the ``socket_*`` arguments only apply to the
    socket backend (``socket_workers=None`` auto-spawns local daemons).
    ``delta_dispatch`` enables versioned parameter caching on the
    distributed backends (the serial backend runs in-process and has
    nothing to cache); results are bit-identical either way.

    ``resilience`` (a :class:`repro.transport.ResilienceConfig`) and
    ``network_fault_plan`` (a :class:`repro.faults.NetworkFaultPlan`)
    tune the socket backend's breakers/backoff/hedging and wire chaos;
    the in-process backends have no wire and ignore both.  ``rng_seed``
    seeds the backoff jitter's dedicated RNG stream (never the
    model/search streams).

    ``population`` (a ``repro.population.PopulationContext``) switches
    the backends to population mode: ``participants`` may be empty, and
    workers derive any participant's spec on demand from the shared
    context instead of holding O(population) spec lists.
    """
    if name == "serial":
        return SerialBackend(
            participants, supernet_config, telemetry=telemetry, population=population
        )
    if name == "process":
        return ProcessPoolBackend(
            participants,
            supernet_config,
            num_workers=num_workers,
            task_timeout_s=task_timeout_s,
            max_retries=task_retries,
            telemetry=telemetry,
            delta_dispatch=delta_dispatch,
            population=population,
        )
    if name == "socket":
        # Imported lazily: the transport package imports this module for
        # the task/result types.
        from repro.transport import SocketBackend

        return SocketBackend(
            participants,
            supernet_config,
            workers=socket_workers,
            num_workers=num_workers,
            task_timeout_s=task_timeout_s,
            max_retries=task_retries,
            compression=socket_compression,
            wire_dtype=socket_wire_dtype,
            telemetry=telemetry,
            delta_dispatch=delta_dispatch,
            resilience=resilience,
            network_fault_plan=network_fault_plan,
            rng_seed=rng_seed,
            population=population,
        )
    raise ValueError(f"unknown backend {name!r}; choose from {BACKENDS}")
