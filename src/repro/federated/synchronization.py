"""Round synchronisation schemes: hard, soft (distributional), latency-driven.

The server's collection behaviour is abstracted as a *delay model*: given
a dispatched round, it decides how many rounds late each participant's
update arrives (``τ = 0`` means fresh).  Three models cover the paper's
experiments:

* :class:`HardSync` — the server waits for everyone; no staleness
  (the "0% staleness" reference configuration).
* :class:`DistributionDelay` — staleness sampled from an explicit mix,
  e.g. the paper's severe setting "30% fresh / 40% one round late /
  20% two rounds late / 10% beyond the threshold" (Fig. 8, Table II).
* :class:`LatencyDrivenDelay` — staleness emerges from simulated
  download + compute + upload times against bandwidth traces and device
  profiles, with the round closing once a fraction of participants have
  reported (the deployed soft-synchronisation behaviour; Table V).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.network import BandwidthTrace

from .participant import DeviceProfile

__all__ = ["RoundDelays", "HardSync", "DistributionDelay", "LatencyDrivenDelay"]


@dataclasses.dataclass(frozen=True)
class RoundDelays:
    """Per-participant staleness (in rounds) plus the round's duration."""

    taus: np.ndarray
    round_duration_s: float


class HardSync:
    """Wait for every participant: all updates fresh, duration = slowest."""

    def delays(
        self,
        payload_bytes: Sequence[float],
        compute_times_s: Sequence[float],
        start_time_s: float = 0.0,
        participant_indices: Optional[Sequence[int]] = None,
    ) -> RoundDelays:
        total = np.asarray(payload_bytes, dtype=float) * 0.0 + np.asarray(
            compute_times_s, dtype=float
        )
        duration = float(total.max()) if len(total) else 0.0
        return RoundDelays(np.zeros(len(total), dtype=int), duration)


class DistributionDelay:
    """Staleness drawn i.i.d. from an explicit distribution.

    ``probabilities[τ]`` is the chance of an update being ``τ`` rounds
    stale; the final entry is the chance of exceeding the staleness
    threshold (encoded as ``threshold + 1`` so the server drops it).

    The paper's severe mix is ``[0.3, 0.4, 0.2, 0.1]`` and the slight mix
    is ``[0.9, 0.09, 0.009, 0.001]`` (Sec. VI-C).
    """

    def __init__(
        self,
        probabilities: Sequence[float],
        staleness_threshold: int,
        rng: Optional[np.random.Generator] = None,
    ):
        probs = np.asarray(probabilities, dtype=float)
        if probs.ndim != 1 or len(probs) < 1:
            raise ValueError("probabilities must be a non-empty vector")
        if np.any(probs < 0):
            raise ValueError("probabilities must be non-negative")
        total = probs.sum()
        if total <= 0:
            raise ValueError("probabilities must sum to a positive value")
        self.probabilities = probs / total
        self.staleness_threshold = staleness_threshold
        self.rng = rng or np.random.default_rng()

    def delays(
        self,
        payload_bytes: Sequence[float],
        compute_times_s: Sequence[float],
        start_time_s: float = 0.0,
        participant_indices: Optional[Sequence[int]] = None,
    ) -> RoundDelays:
        n = len(payload_bytes)
        buckets = self.rng.choice(len(self.probabilities), size=n, p=self.probabilities)
        taus = buckets.copy()
        # The last bucket means "beyond the threshold" regardless of index.
        overflow = buckets == len(self.probabilities) - 1
        taus = np.where(overflow, self.staleness_threshold + 1, taus)
        duration = float(np.max(compute_times_s)) if n else 0.0
        return RoundDelays(taus.astype(int), duration)

    @property
    def fresh_fraction(self) -> float:
        return float(self.probabilities[0])


class LatencyDrivenDelay:
    """Staleness emerging from simulated transmission + compute times.

    Each participant's round trip is ``download + compute + upload``
    (upload assumed symmetric with download).  The round closes when
    ``sync_fraction`` of participants have reported; a straggler whose
    round trip spans ``m`` round durations is ``m`` rounds stale.
    """

    def __init__(
        self,
        traces: Sequence[BandwidthTrace],
        sync_fraction: float = 0.7,
    ):
        if not 0.0 < sync_fraction <= 1.0:
            raise ValueError(f"sync_fraction must be in (0, 1], got {sync_fraction}")
        if not traces:
            raise ValueError("at least one bandwidth trace required")
        self.traces = list(traces)
        self.sync_fraction = sync_fraction

    def delays(
        self,
        payload_bytes: Sequence[float],
        compute_times_s: Sequence[float],
        start_time_s: float = 0.0,
        participant_indices: Optional[Sequence[int]] = None,
    ) -> RoundDelays:
        payloads = np.asarray(payload_bytes, dtype=float)
        computes = np.asarray(compute_times_s, dtype=float)
        if participant_indices is not None:
            traces = [self.traces[i] for i in participant_indices]
        else:
            traces = self.traces
        if len(payloads) != len(traces):
            raise ValueError(f"{len(payloads)} payloads vs {len(traces)} traces")
        round_trips = np.empty(len(payloads))
        for k, (trace, payload, compute) in enumerate(
            zip(traces, payloads, computes)
        ):
            down = trace.transfer_time(payload, start_time_s)
            up = trace.transfer_time(payload, start_time_s + down + compute)
            round_trips[k] = down + compute + up
        # Round closes when the sync_fraction quantile has reported.
        m = max(1, int(np.ceil(self.sync_fraction * len(round_trips))))
        close = float(np.sort(round_trips)[m - 1])
        taus = np.floor(round_trips / max(close, 1e-9)).astype(int)
        taus[round_trips <= close] = 0
        return RoundDelays(taus, close)
