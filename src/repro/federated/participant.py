"""Federated participants: local training of received sub-models.

The participant-side algorithm (Alg. 1 lines 37-42) is deliberately tiny:
receive a sub-model, sample one local mini-batch, run one forward/backward
pass, return the weight gradients and the training-accuracy reward —
both obtained from the same backward propagation.

Participants also carry a :class:`DeviceProfile` (how fast they compute)
and a bandwidth trace (how fast they communicate), which the simulator
uses to produce realistic round timings (Table V, Fig. 7).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

import repro.nn as nn
from repro.data import ArrayDataset, Compose, DataLoader
from repro.evaluation import batch_accuracy
from repro.network import BandwidthTrace
from repro.search_space import Supernet
from repro.telemetry import Telemetry

__all__ = [
    "DeviceProfile",
    "GTX_1080TI",
    "JETSON_TX2",
    "ParticipantUpdate",
    "Participant",
]


@dataclasses.dataclass(frozen=True)
class DeviceProfile:
    """Compute-speed model: seconds per (parameter x sample) trained.

    Calibrated so a round on the paper's hardware scale reproduces the
    Table V ordering: a GTX 1080 Ti finishes the search in < 2.5 h while
    a Jetson TX2 needs < 10 h — a factor-4 speed gap.
    """

    name: str
    seconds_per_param_sample: float

    def __post_init__(self) -> None:
        if self.seconds_per_param_sample <= 0:
            raise ValueError("seconds_per_param_sample must be positive")

    def train_time(self, num_parameters: int, batch_size: int) -> float:
        """Wall-clock seconds for one local forward/backward pass."""
        return self.seconds_per_param_sample * num_parameters * batch_size


#: One 1080 Ti training step on a ~0.27 MB sub-model (~67.5k params) with
#: batch 256 takes ~0.35 s (matches < 2.5 h for 10k search + 10k warm-up
#: steps, Table V).
GTX_1080TI = DeviceProfile("gtx-1080ti", seconds_per_param_sample=2.0e-8)

#: The TX2 is ~4x slower, matching the < 10 h Table V row.
JETSON_TX2 = DeviceProfile("jetson-tx2", seconds_per_param_sample=8.0e-8)


@dataclasses.dataclass
class ParticipantUpdate:
    """What a participant returns to the server (Alg. 1 line 42).

    ``buffers`` carries the sub-model's non-trainable state (batch-norm
    running statistics) after the local step, so the server can keep the
    supernet's buffers fresh for evaluation — a detail the paper leaves
    implicit but any deployment needs.
    """

    participant_id: int
    gradients: Dict[str, np.ndarray]
    reward: float
    num_samples: int
    compute_time_s: float
    buffers: Dict[str, np.ndarray] = dataclasses.field(default_factory=dict)


class Participant:
    """One federated device with a local data shard.

    Parameters
    ----------
    participant_id:
        Stable identifier used for mask bookkeeping.
    dataset:
        The local (typically non-i.i.d.) shard; never leaves the device.
    batch_size:
        Local mini-batch size (Table I: 256; scaled down in practice).
    transform:
        Optional augmentation applied when sampling batches.
    device:
        Compute-speed profile for timing simulation.
    trace:
        Bandwidth trace for transmission simulation (optional; the
        scheduler may also work with plain bandwidth numbers).
    """

    def __init__(
        self,
        participant_id: int,
        dataset: ArrayDataset,
        batch_size: int,
        transform: Optional[Compose] = None,
        device: DeviceProfile = GTX_1080TI,
        trace: Optional[BandwidthTrace] = None,
        availability: float = 1.0,
        rng: Optional[np.random.Generator] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        if not 0.0 <= availability <= 1.0:
            raise ValueError(f"availability must be in [0, 1], got {availability}")
        self.participant_id = participant_id
        self.dataset = dataset
        self.device = device
        self.trace = trace
        self.telemetry = telemetry or Telemetry.disabled()
        #: probability of being online (reachable) in any given round; the
        #: paper's motivating failure mode is a participant "losing
        #: connection with the server" — availability < 1 models that.
        self.availability = availability
        self.rng = rng or np.random.default_rng()
        self.loader = DataLoader(
            dataset, batch_size=batch_size, transform=transform, rng=self.rng
        )

    def local_update(self, submodel: Supernet) -> ParticipantUpdate:
        """Train the received sub-model on one local batch (Alg. 1 37-42).

        Both the weight gradients and the reward (training accuracy, the
        ``ACC`` of Eq. 8) come from the same forward/backward pass.
        """
        with self.telemetry.span(
            "participant.local_step", participant=self.participant_id
        ):
            return self._local_update_inner(submodel)

    def _local_update_inner(self, submodel: Supernet) -> ParticipantUpdate:
        x, y = self.loader.sample_batch()
        submodel.train()
        submodel.zero_grad()
        logits = submodel(x)
        loss = nn.functional.cross_entropy(logits, y)
        loss.backward()
        gradients = {
            name: param.grad.copy()
            for name, param in submodel.named_parameters()
            if param.grad is not None
        }
        buffers = {name: np.array(value, copy=True) for name, value in submodel.named_buffers()}
        reward = batch_accuracy(logits, y)
        compute_time = self.device.train_time(submodel.num_parameters(), len(y))
        return ParticipantUpdate(
            participant_id=self.participant_id,
            gradients=gradients,
            reward=reward,
            num_samples=len(y),
            compute_time_s=compute_time,
            buffers=buffers,
        )

    def num_samples(self) -> int:
        return len(self.dataset)
