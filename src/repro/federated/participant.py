"""Federated participants: local training of received sub-models.

The participant-side algorithm (Alg. 1 lines 37-42) is deliberately tiny:
receive a sub-model, sample one local mini-batch, run one forward/backward
pass, return the weight gradients and the training-accuracy reward —
both obtained from the same backward propagation.

The server↔participant boundary is an explicit message API:
:class:`LocalStepTask` (what the server sends) in,
:class:`ParticipantUpdate` (what comes back) out.  Both are plain
picklable dataclasses, and :func:`run_local_step` is a pure function of
the task plus the participant's static local state (shard, batch size,
device profile) — no shared mutable objects cross the boundary, which is
what lets :mod:`repro.federated.executor` run local steps in worker
processes and still produce bit-identical results.

Participants also carry a :class:`DeviceProfile` (how fast they compute)
and a bandwidth trace (how fast they communicate), which the simulator
uses to produce realistic round timings (Table V, Fig. 7).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

import repro.nn as nn
from repro.data import ArrayDataset, Compose, DataLoader
from repro.evaluation import batch_accuracy
from repro.network import BandwidthTrace
from repro.search_space import ArchitectureMask, Supernet, SupernetConfig
from repro.telemetry import Telemetry
from repro.telemetry.tracing import SpanRecorder, TraceContext, null_span

__all__ = [
    "DeviceProfile",
    "GTX_1080TI",
    "JETSON_TX2",
    "LocalStepTask",
    "ParticipantUpdate",
    "Participant",
    "run_local_step",
]


@dataclasses.dataclass(frozen=True)
class DeviceProfile:
    """Compute-speed model: seconds per (parameter x sample) trained.

    Calibrated so a round on the paper's hardware scale reproduces the
    Table V ordering: a GTX 1080 Ti finishes the search in < 2.5 h while
    a Jetson TX2 needs < 10 h — a factor-4 speed gap.
    """

    name: str
    seconds_per_param_sample: float

    def __post_init__(self) -> None:
        if self.seconds_per_param_sample <= 0:
            raise ValueError("seconds_per_param_sample must be positive")

    def train_time(self, num_parameters: int, batch_size: int) -> float:
        """Wall-clock seconds for one local forward/backward pass."""
        return self.seconds_per_param_sample * num_parameters * batch_size


#: One 1080 Ti training step on a ~0.27 MB sub-model (~67.5k params) with
#: batch 256 takes ~0.35 s (matches < 2.5 h for 10k search + 10k warm-up
#: steps, Table V).
GTX_1080TI = DeviceProfile("gtx-1080ti", seconds_per_param_sample=2.0e-8)

#: The TX2 is ~4x slower, matching the < 10 h Table V row.
JETSON_TX2 = DeviceProfile("jetson-tx2", seconds_per_param_sample=8.0e-8)


@dataclasses.dataclass(frozen=True)
class LocalStepTask:
    """One unit of participant work, as the server puts it on the wire.

    Everything a local step depends on travels inside the task: the
    pruned sub-model weights, the architecture mask to rebuild the
    sub-model's structure from, and the seed of the mini-batch draw.
    Batch-seed derivation lives on the *server* side (drawn from the
    participant's RNG in dispatch order) so that worker scheduling order
    can never perturb RNG streams — seeded runs are bit-identical under
    every execution backend.
    """

    participant_id: int
    round_index: int
    mask: ArchitectureMask
    state: Dict[str, np.ndarray]
    batch_seed: int
    #: Server-side version of each entry in ``state`` (delta dispatch).
    #: ``None`` when versioning is off; backends strip it before
    #: serializing so delta-off wire bytes stay byte-identical.
    state_versions: Optional[Dict[str, int]] = None
    #: Parameters *not* shipped: name → version the worker must already
    #: hold in its cache (see :mod:`repro.federated.versioning`).  Always
    #: ``None`` by the time the task reaches ``run_local_step``.
    state_refs: Optional[Dict[str, int]] = None
    #: Distributed-tracing context (:mod:`repro.telemetry.tracing`);
    #: ``None`` when tracing is off.  Backends strip it for workers that
    #: did not advertise the ``tracing`` capability, so tracing-off wire
    #: bytes stay byte-identical to the historical format.
    trace: Optional[TraceContext] = None


@dataclasses.dataclass
class ParticipantUpdate:
    """What a participant returns to the server (Alg. 1 line 42).

    ``buffers`` carries the sub-model's non-trainable state (batch-norm
    running statistics) after the local step, so the server can keep the
    supernet's buffers fresh for evaluation — a detail the paper leaves
    implicit but any deployment needs.
    """

    participant_id: int
    gradients: Dict[str, np.ndarray]
    reward: float
    num_samples: int
    compute_time_s: float
    buffers: Dict[str, np.ndarray] = dataclasses.field(default_factory=dict)
    #: Worker-side span payload (:meth:`SpanRecorder.payload`) when the
    #: task carried a trace context; piggybacked back to the server and
    #: merged into the round timeline by the backend.  ``None`` when
    #: tracing is off — it never influences aggregation.
    spans: Optional[Dict] = None


def _train_on_batch(
    submodel: Supernet,
    x: np.ndarray,
    y: np.ndarray,
    participant_id: int,
    device: DeviceProfile,
    recorder: Optional[SpanRecorder] = None,
) -> ParticipantUpdate:
    """One forward/backward pass on ``(x, y)`` (Alg. 1 lines 40-42).

    ``recorder`` (tracing) only brackets the phases with span timers —
    the numerics are untouched, so traced and untraced steps produce
    bit-identical updates.
    """
    span = recorder.span if recorder is not None else null_span
    submodel.train()
    submodel.zero_grad()
    with span("forward"):
        logits = submodel(x)
        loss = nn.functional.cross_entropy(logits, y)
    with span("backward"):
        loss.backward()
    with span("pack"):
        gradients = {
            name: param.grad.copy()
            for name, param in submodel.named_parameters()
            if param.grad is not None
        }
        buffers = {
            name: np.array(value, copy=True)
            for name, value in submodel.named_buffers()
        }
        reward = batch_accuracy(logits, y)
    compute_time = device.train_time(submodel.num_parameters(), len(y))
    return ParticipantUpdate(
        participant_id=participant_id,
        gradients=gradients,
        reward=reward,
        num_samples=len(y),
        compute_time_s=compute_time,
        buffers=buffers,
    )


def run_local_step(
    task: LocalStepTask,
    dataset: ArrayDataset,
    batch_size: int,
    supernet_config: SupernetConfig,
    transform: Optional[Compose] = None,
    device: DeviceProfile = GTX_1080TI,
    recorder: Optional[SpanRecorder] = None,
) -> ParticipantUpdate:
    """Execute one :class:`LocalStepTask` — the pure server↔participant step.

    Rebuilds the sub-model from ``task.mask`` + ``task.state``, draws the
    local mini-batch from ``task.batch_seed``, and runs one
    forward/backward pass.  Every source of randomness is in the task, so
    the same task always yields the same :class:`ParticipantUpdate`, in
    any process, under any scheduling order.  When a ``recorder`` is
    given the phases are bracketed with worker-side spans ("build",
    "forward", "backward", "pack") — timing only, never numerics.

    When the compiled compute engine is on (:func:`repro.nn.tape.enabled`)
    the step is served by :func:`repro.federated.compiled.run_compiled_step`
    — bit-identical in float64, tolerance-equal in float32 — with this
    eager path as the universal fallback.
    """
    if nn.tape.enabled():
        from .compiled import run_compiled_step

        update = run_compiled_step(
            task,
            dataset,
            batch_size,
            supernet_config,
            transform=transform,
            device=device,
            recorder=recorder,
        )
        if update is not None:
            return update
        # Uncapturable key: fall through to the eager path below.
    span = recorder.span if recorder is not None else null_span
    with span("build"):
        submodel = Supernet(
            supernet_config, rng=np.random.default_rng(0), mask=task.mask
        )
        submodel.load_state_dict(dict(task.state))
        loader = DataLoader(
            dataset,
            batch_size=min(batch_size, len(dataset)),
            transform=transform,
            rng=np.random.default_rng(task.batch_seed),
        )
        x, y = loader.sample_batch()
    return _train_on_batch(
        submodel, x, y, task.participant_id, device, recorder=recorder
    )


class Participant:
    """One federated device with a local data shard.

    Parameters
    ----------
    participant_id:
        Stable identifier used for mask bookkeeping.
    dataset:
        The local (typically non-i.i.d.) shard; never leaves the device.
    batch_size:
        Local mini-batch size (Table I: 256; scaled down in practice).
    transform:
        Optional augmentation applied when sampling batches.
    device:
        Compute-speed profile for timing simulation.
    trace:
        Bandwidth trace for transmission simulation (optional; the
        scheduler may also work with plain bandwidth numbers).
    """

    def __init__(
        self,
        participant_id: int,
        dataset: ArrayDataset,
        batch_size: int,
        transform: Optional[Compose] = None,
        device: DeviceProfile = GTX_1080TI,
        trace: Optional[BandwidthTrace] = None,
        availability: float = 1.0,
        rng: Optional[np.random.Generator] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        if not 0.0 <= availability <= 1.0:
            raise ValueError(f"availability must be in [0, 1], got {availability}")
        self.participant_id = participant_id
        self.dataset = dataset
        self.device = device
        self.trace = trace
        self.telemetry = telemetry or Telemetry.disabled()
        #: probability of being online (reachable) in any given round; the
        #: paper's motivating failure mode is a participant "losing
        #: connection with the server" — availability < 1 models that.
        self.availability = availability
        self.rng = rng or np.random.default_rng()
        self.loader = DataLoader(
            dataset, batch_size=batch_size, transform=transform, rng=self.rng
        )

    def draw_batch_seed(self) -> int:
        """Next mini-batch seed from this participant's private RNG stream.

        The *server* calls this while building a :class:`LocalStepTask`
        (in deterministic dispatch order), so the seed sequence — and
        hence every batch a participant ever trains on — is independent
        of which execution backend runs the step.
        """
        return int(self.rng.integers(0, 2**63))

    def execute_task(
        self,
        task: LocalStepTask,
        supernet_config: SupernetConfig,
        recorder: Optional[SpanRecorder] = None,
    ) -> ParticipantUpdate:
        """Run one :class:`LocalStepTask` in-process (the serial backend)."""
        with self.telemetry.span(
            "participant.local_step", participant=self.participant_id
        ):
            return run_local_step(
                task,
                self.dataset,
                self.loader.batch_size,
                supernet_config,
                transform=self.loader.transform,
                device=self.device,
                recorder=recorder,
            )

    def local_update(self, submodel: Supernet) -> ParticipantUpdate:
        """Train the received sub-model on one local batch (Alg. 1 37-42).

        Both the weight gradients and the reward (training accuracy, the
        ``ACC`` of Eq. 8) come from the same forward/backward pass.

        .. deprecated:: direct live-object dispatch
            The server no longer calls this; rounds go through
            :class:`LocalStepTask` + :func:`run_local_step` (see
            :mod:`repro.federated.executor`).  ``local_update`` remains
            for callers holding an extracted sub-model; note it draws the
            batch from the participant's *stateful* loader RNG rather
            than a task seed.
        """
        with self.telemetry.span(
            "participant.local_step", participant=self.participant_id
        ):
            x, y = self.loader.sample_batch()
            return _train_on_batch(
                submodel, x, y, self.participant_id, self.device
            )

    def num_samples(self) -> int:
        return len(self.dataset)
