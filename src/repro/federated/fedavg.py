"""Federated Averaging (McMahan et al., 2017) on fixed architectures.

Used in three places:

* phase P3 when retraining the searched architecture federatedly,
* the ``FedAvg`` baseline rows of Tables III and IV (hand-designed model),
* the convergence studies of Figs. 9-11 (average participant train /
  validation accuracy versus communication rounds).

Implements the model-averaging form: each selected participant trains the
global model for ``local_steps`` mini-batches and returns its weights; the
server takes the sample-weighted average as the next global model.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

import repro.nn as nn
from repro.data import ArrayDataset, Compose, DataLoader
from repro.evaluation import CurveRecorder, batch_accuracy, evaluate_accuracy

__all__ = ["FedAvgConfig", "FedAvgTrainer"]


@dataclasses.dataclass
class FedAvgConfig:
    """FedAvg hyperparameters; FL-column defaults follow Table I (P3, FL)."""

    lr: float = 0.1
    momentum: float = 0.5
    weight_decay: float = 0.005
    grad_clip: float = 5.0
    batch_size: int = 16
    local_steps: int = 2
    participation_fraction: float = 1.0
    #: flatten the model into a :class:`repro.nn.ParameterArena` and run
    #: the round loop over flat snapshots: the global state is one
    #: ``data.copy()``, restoring a participant is one range copy, and
    #: the weighted average is a single accumulation over the flat
    #: buffer.  Bit-identical to the dict path.
    param_arena: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.participation_fraction <= 1.0:
            raise ValueError(
                f"participation_fraction must be in (0, 1], "
                f"got {self.participation_fraction}"
            )
        if self.local_steps < 1:
            raise ValueError(f"local_steps must be >= 1, got {self.local_steps}")


class FedAvgTrainer:
    """Trains one fixed-architecture model over federated shards."""

    def __init__(
        self,
        model: nn.Module,
        shards: Sequence[ArrayDataset],
        config: Optional[FedAvgConfig] = None,
        transform: Optional[Compose] = None,
        test_dataset: Optional[ArrayDataset] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if not shards:
            raise ValueError("at least one shard required")
        self.model = model
        self.shards = list(shards)
        self.config = config or FedAvgConfig()
        self.transform = transform
        self.test_dataset = test_dataset
        self.rng = rng or np.random.default_rng()
        self.recorder = CurveRecorder()
        self.round = 0
        #: optional flat arena over the model (config.param_arena); an
        #: arena already attached by the caller is reused as-is.
        self.arena: Optional[nn.ParameterArena] = getattr(model, "_arena", None)
        if self.arena is None and self.config.param_arena:
            self.arena = nn.ParameterArena.from_module(model)
        self._loaders = [
            DataLoader(
                shard,
                batch_size=min(self.config.batch_size, len(shard)),
                transform=transform,
                rng=np.random.default_rng(self.rng.integers(2**32)),
            )
            for shard in self.shards
        ]

    # ------------------------------------------------------------------
    def run_round(self) -> Dict[str, float]:
        """One communication round; returns round metrics."""
        k = len(self.shards)
        num_selected = max(1, int(round(self.config.participation_fraction * k)))
        selected = self.rng.choice(k, size=num_selected, replace=False)

        train_accuracies: List[float] = []
        weights: List[float] = []
        if self.arena is not None:
            # Flat path: state_dict() views alias the live arena, so
            # snapshots must be flat copies — which is exactly the win:
            # one range copy per movement instead of a dict of arrays.
            global_flat = self.arena.data.copy()
            flats: List[np.ndarray] = []
            for idx in selected:
                self.arena.load_flat(global_flat)
                accuracy = self._local_train(int(idx))
                flats.append(self.arena.data.copy())
                weights.append(len(self.shards[idx]))
                train_accuracies.append(accuracy)
            self.arena.load_flat(self._weighted_average_flat(flats, weights))
        else:
            global_state = self.model.state_dict()
            collected: List[Dict[str, np.ndarray]] = []
            for idx in selected:
                self.model.load_state_dict(global_state)
                accuracy = self._local_train(int(idx))
                collected.append(self.model.state_dict())
                weights.append(len(self.shards[idx]))
                train_accuracies.append(accuracy)
            averaged = self._weighted_average(collected, weights)
            self.model.load_state_dict(averaged)

        metrics = {"train_accuracy": float(np.mean(train_accuracies))}
        self.recorder.record("train_accuracy", metrics["train_accuracy"])
        if self.test_dataset is not None:
            metrics["val_accuracy"] = evaluate_accuracy(self.model, self.test_dataset)
            self.recorder.record("val_accuracy", metrics["val_accuracy"])
        self.round += 1
        return metrics

    def run(self, rounds: int) -> CurveRecorder:
        for _ in range(rounds):
            self.run_round()
        return self.recorder

    # ------------------------------------------------------------------
    def _local_train(self, shard_index: int) -> float:
        """Train the global model on one shard; returns mean batch accuracy."""
        optimizer = nn.SGD(
            self.model.parameters(),
            lr=self.config.lr,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )
        self.model.train()
        accuracies = []
        loader = self._loaders[shard_index]
        for _ in range(self.config.local_steps):
            x, y = loader.sample_batch()
            optimizer.zero_grad()
            logits = self.model(x)
            loss = nn.functional.cross_entropy(logits, y)
            loss.backward()
            nn.clip_grad_norm(self.model.parameters(), self.config.grad_clip)
            optimizer.step()
            accuracies.append(batch_accuracy(logits, y))
        return float(np.mean(accuracies))

    @staticmethod
    def _weighted_average(
        states: List[Dict[str, np.ndarray]], weights: List[float]
    ) -> Dict[str, np.ndarray]:
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("aggregation weights must sum to a positive value")
        averaged: Dict[str, np.ndarray] = {}
        for name in states[0]:
            averaged[name] = sum(
                (w / total) * state[name] for state, w in zip(states, weights)
            )
        return averaged

    @staticmethod
    def _weighted_average_flat(
        flats: List[np.ndarray], weights: List[float]
    ) -> np.ndarray:
        """Flat-arena weighted average: one accumulation over the buffer.

        Element-wise with the identical addend order as the per-name
        ``sum((w/total) * state[name])``, so results are bit-identical
        to :meth:`_weighted_average` — just over one array.
        """
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("aggregation weights must sum to a positive value")
        averaged = np.zeros_like(flats[0])
        for flat, w in zip(flats, weights):
            averaged += (w / total) * flat
        return averaged
