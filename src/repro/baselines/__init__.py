"""``repro.baselines`` — every comparator of Tables II-V and Figs. 7-11."""

from .common import SearchOutcome
from .darts import DartsConfig, DartsSearcher
from .enas import EnasConfig, EnasSearcher
from .evofednas import EvoFedNasConfig, EvoFedNasSearcher
from .fednas import FedNasConfig, FedNasSearcher
from .fixed_models import DeepResidualNet, ResidualBlock, SimpleCNN, resnet_stand_in

__all__ = [
    "SearchOutcome",
    "DartsConfig",
    "DartsSearcher",
    "EnasConfig",
    "EnasSearcher",
    "EvoFedNasConfig",
    "EvoFedNasSearcher",
    "FedNasConfig",
    "FedNasSearcher",
    "DeepResidualNet",
    "ResidualBlock",
    "SimpleCNN",
    "resnet_stand_in",
]
