"""Centralised DARTS (Liu et al., ICLR 2019), first and second order.

The gradient-based comparator of Table II.  The supernet executes all
operations per edge weighted by a softmax over architecture parameters
(Eq. 3); weights and architecture parameters are optimised alternately —
weights on the training split, architecture on the validation split.

Second-order DARTS replaces ``∇_α L_val(w, α)`` with the unrolled
estimate ``∇_α L_val(w − ξ ∇_w L_train, α)`` and approximates the
implicit Hessian-vector product by finite differences, exactly following
the reference implementation.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

import repro.nn as nn
from repro.data import ArrayDataset, DataLoader
from repro.evaluation import CurveRecorder, batch_accuracy
from repro.search_space import (
    NUM_OPERATIONS,
    Genotype,
    Supernet,
    SupernetConfig,
    derive_genotype,
)

from .common import SearchOutcome

__all__ = ["DartsConfig", "DartsSearcher"]


@dataclasses.dataclass
class DartsConfig:
    """DARTS hyperparameters (Table I centralised column)."""

    w_lr: float = 0.025
    w_momentum: float = 0.9
    w_weight_decay: float = 3e-4
    w_grad_clip: float = 5.0
    alpha_lr: float = 3e-4
    alpha_weight_decay: float = 1e-3
    batch_size: int = 16
    order: int = 1
    #: unrolling step size ξ for 2nd order (defaults to w_lr as in DARTS)
    xi: Optional[float] = None
    #: DARTS+ early stopping (Liang et al.): stop the search once
    #: ``skip_connect`` dominates this fraction of the normal cell's
    #: edges — the signature of the DARTS performance collapse.  None
    #: disables it (vanilla DARTS).
    early_stop_skip_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if self.order not in (1, 2):
            raise ValueError(f"order must be 1 or 2, got {self.order}")
        if self.early_stop_skip_fraction is not None and not (
            0.0 < self.early_stop_skip_fraction <= 1.0
        ):
            raise ValueError(
                "early_stop_skip_fraction must be in (0, 1], got "
                f"{self.early_stop_skip_fraction}"
            )


class DartsSearcher:
    """Alternating bilevel optimisation of (α, w) on a mixed supernet."""

    def __init__(
        self,
        config: SupernetConfig,
        train_set: ArrayDataset,
        val_set: ArrayDataset,
        darts_config: Optional[DartsConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.rng = rng or np.random.default_rng()
        self.net_config = config
        self.config = darts_config or DartsConfig()
        self.supernet = Supernet(config, rng=self.rng)
        e = config.num_edges
        self.alpha_normal = nn.Parameter(1e-3 * self.rng.standard_normal((e, NUM_OPERATIONS)))
        self.alpha_reduce = nn.Parameter(1e-3 * self.rng.standard_normal((e, NUM_OPERATIONS)))
        self.w_optimizer = nn.SGD(
            self.supernet.parameters(),
            lr=self.config.w_lr,
            momentum=self.config.w_momentum,
            weight_decay=self.config.w_weight_decay,
        )
        self.alpha_optimizer = nn.Adam(
            [self.alpha_normal, self.alpha_reduce],
            lr=self.config.alpha_lr,
            weight_decay=self.config.alpha_weight_decay,
        )
        self.train_loader = DataLoader(
            train_set, batch_size=self.config.batch_size, rng=self.rng
        )
        self.val_loader = DataLoader(
            val_set, batch_size=self.config.batch_size, rng=self.rng
        )
        self.recorder = CurveRecorder()

    # ------------------------------------------------------------------
    def _mixed_forward(self, x) -> nn.Tensor:
        from repro.nn.functional import softmax

        weights_normal = softmax(self.alpha_normal, axis=-1)
        weights_reduce = softmax(self.alpha_reduce, axis=-1)
        return self.supernet.forward_mixed(x, weights_normal, weights_reduce)

    def _loss_on(self, batch) -> Tuple[nn.Tensor, float]:
        x, y = batch
        logits = self._mixed_forward(x)
        return nn.functional.cross_entropy(logits, y), batch_accuracy(logits, y)

    def _zero_all(self) -> None:
        self.supernet.zero_grad()
        self.alpha_normal.zero_grad()
        self.alpha_reduce.zero_grad()

    # ------------------------------------------------------------------
    def step(self) -> float:
        """One alternating step: architecture update then weight update.

        Returns the training-batch accuracy (the curve of Figs. 3-6's
        centralised analogue).
        """
        val_batch = self.val_loader.sample_batch()
        train_batch = self.train_loader.sample_batch()

        if self.config.order == 1:
            self._alpha_step_first_order(val_batch)
        else:
            self._alpha_step_second_order(train_batch, val_batch)

        self._zero_all()
        loss, accuracy = self._loss_on(train_batch)
        loss.backward()
        nn.clip_grad_norm(self.supernet.parameters(), self.config.w_grad_clip)
        self.w_optimizer.step()
        self.recorder.record("train_accuracy", accuracy)
        return accuracy

    def _alpha_step_first_order(self, val_batch) -> None:
        self._zero_all()
        loss, _ = self._loss_on(val_batch)
        loss.backward()
        self.alpha_optimizer.step()

    def _alpha_step_second_order(self, train_batch, val_batch) -> None:
        xi = self.config.xi if self.config.xi is not None else self.config.w_lr
        params = self.supernet.parameters()
        backup = [p.data.copy() for p in params]

        # Virtual step: w' = w − ξ ∇_w L_train(w).
        self._zero_all()
        loss, _ = self._loss_on(train_batch)
        loss.backward()
        train_grads = [None if p.grad is None else p.grad.copy() for p in params]
        for p, g in zip(params, train_grads):
            if g is not None:
                p.data -= xi * g

        # ∇_α L_val(w', α) and ∇_{w'} L_val.
        self._zero_all()
        loss, _ = self._loss_on(val_batch)
        loss.backward()
        dalpha = [self.alpha_normal.grad.copy(), self.alpha_reduce.grad.copy()]
        dw = [None if p.grad is None else p.grad.copy() for p in params]

        # Finite-difference Hessian-vector product.
        norm = np.sqrt(sum(float((g ** 2).sum()) for g in dw if g is not None))
        eps = 0.01 / max(norm, 1e-8)
        for p, orig, g in zip(params, backup, dw):
            p.data[...] = orig + (eps * g if g is not None else 0.0)
        g_plus = self._alpha_grads_on(train_batch)
        for p, orig, g in zip(params, backup, dw):
            p.data[...] = orig - (eps * g if g is not None else 0.0)
        g_minus = self._alpha_grads_on(train_batch)
        for p, orig in zip(params, backup):
            p.data[...] = orig

        hessian_term = [(gp - gm) / (2 * eps) for gp, gm in zip(g_plus, g_minus)]
        self._zero_all()
        self.alpha_normal.grad = dalpha[0] - xi * hessian_term[0]
        self.alpha_reduce.grad = dalpha[1] - xi * hessian_term[1]
        self.alpha_optimizer.step()

    def _alpha_grads_on(self, batch) -> List[np.ndarray]:
        self._zero_all()
        loss, _ = self._loss_on(batch)
        loss.backward()
        return [
            np.zeros_like(self.alpha_normal.data)
            if self.alpha_normal.grad is None
            else self.alpha_normal.grad.copy(),
            np.zeros_like(self.alpha_reduce.data)
            if self.alpha_reduce.grad is None
            else self.alpha_reduce.grad.copy(),
        ]

    # ------------------------------------------------------------------
    def alpha_stack(self) -> np.ndarray:
        """Architecture parameters in the shared (2, E, N) layout."""
        return np.stack([self.alpha_normal.data, self.alpha_reduce.data])

    def derive(self) -> Genotype:
        return derive_genotype(self.alpha_stack())

    def skip_connect_fraction(self) -> float:
        """Fraction of normal-cell edges whose argmax op is skip_connect.

        The DARTS+ collapse indicator: when this climbs, the mixed-op
        optimisation is degenerating toward parameter-free edges.
        """
        from repro.search_space import PRIMITIVES

        skip = PRIMITIVES.index("skip_connect")
        choices = self.alpha_normal.data.argmax(axis=1)
        return float(np.mean(choices == skip))

    def search(self, steps: int) -> SearchOutcome:
        """Run up to ``steps`` alternating updates.

        With ``early_stop_skip_fraction`` set, stops as soon as
        skip-connects dominate that fraction of the normal cell (DARTS+).
        """
        threshold = self.config.early_stop_skip_fraction
        for _ in range(steps):
            self.step()
            if threshold is not None and self.skip_connect_fraction() >= threshold:
                break
        return SearchOutcome(genotype=self.derive(), recorder=self.recorder)
