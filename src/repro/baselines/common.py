"""Shared result type and cost accounting for NAS baselines."""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.evaluation import CurveRecorder
from repro.search_space import Genotype

__all__ = ["SearchOutcome"]


@dataclasses.dataclass
class SearchOutcome:
    """What every searcher returns: the architecture plus its costs.

    ``simulated_time_s`` is virtual wall-clock under the device/bandwidth
    models (Table V); ``bytes_transferred`` sums all payloads shipped
    between server and participants (the communication-efficiency claim);
    both are 0 for purely centralised searchers.
    """

    genotype: Genotype
    recorder: CurveRecorder
    simulated_time_s: float = 0.0
    bytes_transferred: float = 0.0
    mean_payload_bytes: Optional[float] = None
