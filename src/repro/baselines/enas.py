"""Centralised ENAS-style RL search with parameter sharing (Pham et al.).

The RL comparator of Table II.  Like our federated method it samples one
operation per edge from a learned policy and shares supernet weights
across sampled architectures; unlike ours it runs on a centralised
dataset with no federation, no transmission, and no staleness.

(The original ENAS uses an LSTM controller; consistent with the paper's
framing — "ProxylessNAS adopts an architecture parameter matrix as a
controller" — we use the same matrix controller for all RL searchers so
the comparison isolates the *distribution* strategy, not the controller
parameterisation.)
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

import repro.nn as nn
from repro.controller import (
    AlphaOptimizer,
    ArchitecturePolicy,
    MovingAverageBaseline,
    ReinforceEstimator,
)
from repro.data import ArrayDataset, DataLoader
from repro.evaluation import CurveRecorder, batch_accuracy
from repro.search_space import Genotype, Supernet, SupernetConfig, derive_genotype

from .common import SearchOutcome

__all__ = ["EnasConfig", "EnasSearcher"]


@dataclasses.dataclass
class EnasConfig:
    w_lr: float = 0.025
    w_momentum: float = 0.9
    w_weight_decay: float = 3e-4
    w_grad_clip: float = 5.0
    alpha_lr: float = 0.003
    alpha_weight_decay: float = 1e-4
    baseline_decay: float = 0.99
    batch_size: int = 16
    #: architectures sampled (and trained) per policy update
    samples_per_step: int = 2


class EnasSearcher:
    """Sampled single-path training + REINFORCE on central data."""

    def __init__(
        self,
        config: SupernetConfig,
        train_set: ArrayDataset,
        enas_config: Optional[EnasConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.rng = rng or np.random.default_rng()
        self.net_config = config
        self.config = enas_config or EnasConfig()
        self.supernet = Supernet(config, rng=self.rng)
        self.policy = ArchitecturePolicy(config.num_edges, rng=self.rng)
        self.baseline = MovingAverageBaseline(decay=self.config.baseline_decay)
        self.alpha_optimizer = AlphaOptimizer(
            self.policy,
            lr=self.config.alpha_lr,
            weight_decay=self.config.alpha_weight_decay,
        )
        self.w_optimizer = nn.SGD(
            self.supernet.parameters(),
            lr=self.config.w_lr,
            momentum=self.config.w_momentum,
            weight_decay=self.config.w_weight_decay,
        )
        self.loader = DataLoader(train_set, batch_size=self.config.batch_size, rng=self.rng)
        self.recorder = CurveRecorder()

    def step(self) -> float:
        """Sample architectures, train shared weights on them, update policy.

        Returns the mean training accuracy across sampled architectures.
        """
        estimator = ReinforceEstimator(self.policy)
        accuracies = []
        for _ in range(self.config.samples_per_step):
            mask = self.policy.sample_mask()
            x, y = self.loader.sample_batch()
            self.supernet.zero_grad()
            logits = self.supernet(x, mask)
            loss = nn.functional.cross_entropy(logits, y)
            loss.backward()
            nn.clip_grad_norm(self.supernet.parameters(), self.config.w_grad_clip)
            self.w_optimizer.step()
            accuracy = batch_accuracy(logits, y)
            accuracies.append(accuracy)
            estimator.add(mask, self.baseline.advantage(accuracy))
        self.baseline.update(accuracies)
        self.alpha_optimizer.step(estimator.gradient())
        mean_accuracy = float(np.mean(accuracies))
        self.recorder.record("train_accuracy", mean_accuracy)
        return mean_accuracy

    def derive(self) -> Genotype:
        return derive_genotype(self.policy.alpha)

    def search(self, steps: int) -> SearchOutcome:
        for _ in range(steps):
            self.step()
        return SearchOutcome(genotype=self.derive(), recorder=self.recorder)
