"""Hand-designed models used as FedAvg baselines.

The paper's pre-defined-model rows (``FedAvg`` in Table III, ``FedAvg*``
in Table IV) train a fixed architecture — ResNet152 in the starred rows —
with federated averaging.  At paper scale that model is 58.2 MB versus
3.9 MB for the searched one; the stand-ins here preserve that "an order
of magnitude larger, yet worse on non-i.i.d. data" relationship at
simulator scale.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

import repro.nn as nn
from repro.nn import Tensor

__all__ = ["SimpleCNN", "ResidualBlock", "DeepResidualNet", "resnet_stand_in"]


class SimpleCNN(nn.Module):
    """A small conv-net: the generic "pre-determined model" baseline."""

    def __init__(
        self,
        num_classes: int = 10,
        input_channels: int = 3,
        channels: int = 16,
        num_blocks: int = 2,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        layers = [
            nn.Conv2d(input_channels, channels, 3, padding=1, rng=rng),
            nn.BatchNorm2d(channels),
            nn.ReLU(),
        ]
        for _ in range(num_blocks - 1):
            layers += [
                nn.Conv2d(channels, channels, 3, padding=1, rng=rng),
                nn.BatchNorm2d(channels),
                nn.ReLU(),
            ]
        self.features = nn.Sequential(*layers)
        self.pool = nn.GlobalAvgPool()
        self.classifier = nn.Linear(channels, num_classes, rng=rng)

    def forward(self, x) -> Tensor:
        x = nn.as_tensor(x)
        return self.classifier(self.pool(self.features(x)))


class ResidualBlock(nn.Module):
    """Basic pre-activation residual block with optional downsampling."""

    def __init__(
        self,
        c_in: int,
        c_out: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.bn1 = nn.BatchNorm2d(c_in)
        self.conv1 = nn.Conv2d(c_in, c_out, 3, stride=stride, padding=1, rng=rng)
        self.bn2 = nn.BatchNorm2d(c_out)
        self.conv2 = nn.Conv2d(c_out, c_out, 3, padding=1, rng=rng)
        if stride != 1 or c_in != c_out:
            self.shortcut = nn.Conv2d(c_in, c_out, 1, stride=stride, rng=rng)
        else:
            self.shortcut = nn.Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.conv1(self.bn1(x).relu())
        out = self.conv2(self.bn2(out).relu())
        return out + self.shortcut(x)


class DeepResidualNet(nn.Module):
    """A deep residual network — the ResNet152 stand-in.

    ``blocks_per_stage`` controls depth; three stages with channel
    doubling mirror the CIFAR ResNet layout.
    """

    def __init__(
        self,
        num_classes: int = 10,
        input_channels: int = 3,
        base_channels: int = 16,
        blocks_per_stage: int = 3,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if blocks_per_stage < 1:
            raise ValueError(f"blocks_per_stage must be >= 1, got {blocks_per_stage}")
        rng = rng or np.random.default_rng()
        self.stem = nn.Conv2d(input_channels, base_channels, 3, padding=1, rng=rng)
        blocks = []
        channels = base_channels
        for stage in range(3):
            for b in range(blocks_per_stage):
                stride = 2 if stage > 0 and b == 0 else 1
                c_out = channels * 2 if stride == 2 else channels
                blocks.append(ResidualBlock(channels, c_out, stride=stride, rng=rng))
                channels = c_out
        self.blocks = nn.Sequential(*blocks)
        self.final_bn = nn.BatchNorm2d(channels)
        self.pool = nn.GlobalAvgPool()
        self.classifier = nn.Linear(channels, num_classes, rng=rng)

    def forward(self, x) -> Tensor:
        x = nn.as_tensor(x)
        out = self.blocks(self.stem(x))
        out = self.final_bn(out).relu()
        return self.classifier(self.pool(out))


def resnet_stand_in(
    num_classes: int = 10,
    input_channels: int = 3,
    rng: Optional[np.random.Generator] = None,
) -> DeepResidualNet:
    """The default "ResNet152" proxy used by Table IV / Figs. 9-11 benches.

    Sized to be roughly an order of magnitude larger than a typical
    searched sub-model at simulator scale (mirroring 58.2 MB vs 3.9 MB).
    """
    return DeepResidualNet(
        num_classes=num_classes,
        input_channels=input_channels,
        base_channels=16,
        blocks_per_stage=3,
        rng=rng,
    )
