"""EvoFedNAS (Zhu & Jin, 2020): real-time federated evolutionary NAS.

The evolutionary comparator of Tables III-V.  A population of candidate
architectures is maintained at the server; each generation every
candidate is trained briefly with federated averaging on the
participants, its fitness is the mean participant accuracy, the worse
half is discarded, and the survivors are mutated to refill the
population.

Two variants mirror the paper's rows: ``big`` searches larger networks
(more initial channels), ``small`` searches smaller ones — the paper
finds big more accurate but heavier, and both slower to search than the
RL method because every candidate trains from its own weights (no
parameter sharing).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

import repro.nn as nn
from repro.data import ArrayDataset, DataLoader
from repro.evaluation import CurveRecorder, batch_accuracy
from repro.nn import state_size_bytes
from repro.search_space import (
    NUM_OPERATIONS,
    ArchitectureMask,
    Genotype,
    Supernet,
    SupernetConfig,
)

from .common import SearchOutcome
from ..federated.participant import DeviceProfile, GTX_1080TI

__all__ = ["EvoFedNasConfig", "EvoFedNasSearcher"]


@dataclasses.dataclass
class EvoFedNasConfig:
    population_size: int = 6
    #: local FedAvg steps each candidate receives per generation
    train_steps_per_generation: int = 2
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 3e-4
    grad_clip: float = 5.0
    batch_size: int = 16
    #: per-edge probability of mutating an offspring edge
    mutation_rate: float = 0.2
    #: "big" doubles the base channels; "small" halves them
    variant: str = "big"

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError(
                f"population_size must be >= 2, got {self.population_size}"
            )
        if not 0.0 < self.mutation_rate <= 1.0:
            raise ValueError(f"mutation_rate must be in (0, 1], got {self.mutation_rate}")
        if self.variant not in ("big", "small"):
            raise ValueError(f"variant must be 'big' or 'small', got {self.variant!r}")


@dataclasses.dataclass
class _Candidate:
    mask: ArchitectureMask
    model: Supernet
    fitness: float = 0.0


class EvoFedNasSearcher:
    """Population-based federated architecture evolution."""

    def __init__(
        self,
        config: SupernetConfig,
        shards: Sequence[ArrayDataset],
        evo_config: Optional[EvoFedNasConfig] = None,
        device: DeviceProfile = GTX_1080TI,
        rng: Optional[np.random.Generator] = None,
    ):
        if not shards:
            raise ValueError("at least one shard required")
        self.rng = rng or np.random.default_rng()
        self.config = evo_config or EvoFedNasConfig()
        self.device = device
        if self.config.variant == "big":
            base = config.init_channels * 2
        else:
            base = max(2, config.init_channels // 2)
        self.net_config = dataclasses.replace(config, init_channels=base, affine=True)
        self.loaders = [
            DataLoader(
                shard,
                batch_size=min(self.config.batch_size, len(shard)),
                rng=np.random.default_rng(self.rng.integers(2**32)),
            )
            for shard in shards
        ]
        self.population: List[_Candidate] = [
            self._spawn(self._random_mask()) for _ in range(self.config.population_size)
        ]
        self.recorder = CurveRecorder()
        self.simulated_time_s = 0.0
        self.bytes_transferred = 0.0
        self.generation = 0

    # ------------------------------------------------------------------
    def _random_mask(self) -> ArchitectureMask:
        e = self.net_config.num_edges
        return ArchitectureMask.from_arrays(
            self.rng.integers(0, NUM_OPERATIONS, size=e),
            self.rng.integers(0, NUM_OPERATIONS, size=e),
        )

    def _spawn(self, mask: ArchitectureMask) -> _Candidate:
        model = Supernet(
            self.net_config,
            rng=np.random.default_rng(self.rng.integers(2**32)),
            mask=mask,
        )
        return _Candidate(mask=mask, model=model)

    def _mutate(self, mask: ArchitectureMask) -> ArchitectureMask:
        normal = list(mask.normal)
        reduce = list(mask.reduce)
        for ops in (normal, reduce):
            for e in range(len(ops)):
                if self.rng.random() < self.config.mutation_rate:
                    ops[e] = int(self.rng.integers(0, NUM_OPERATIONS))
        return ArchitectureMask(tuple(normal), tuple(reduce))

    # ------------------------------------------------------------------
    def _federated_fitness(self, candidate: _Candidate) -> Tuple[float, float]:
        """FedAvg-train the candidate briefly; returns (fitness, time)."""
        model = candidate.model
        global_state = model.state_dict()
        collected = []
        weights = []
        accuracies = []
        shard_times = []
        for loader in self.loaders:
            model.load_state_dict(global_state)
            optimizer = nn.SGD(
                model.parameters(),
                lr=self.config.lr,
                momentum=self.config.momentum,
                weight_decay=self.config.weight_decay,
            )
            local_acc = []
            shard_time = 0.0
            for _ in range(self.config.train_steps_per_generation):
                x, y = loader.sample_batch()
                optimizer.zero_grad()
                logits = model(x)
                loss = nn.functional.cross_entropy(logits, y)
                loss.backward()
                nn.clip_grad_norm(model.parameters(), self.config.grad_clip)
                optimizer.step()
                local_acc.append(batch_accuracy(logits, y))
                shard_time += self.device.train_time(model.num_parameters(), len(y))
            shard_times.append(shard_time)
            collected.append(model.state_dict())
            weights.append(len(loader.dataset))
            accuracies.append(float(np.mean(local_acc)))
            self.bytes_transferred += 2 * float(state_size_bytes(global_state))

        total = float(sum(weights))
        averaged = {
            name: sum((w / total) * state[name] for state, w in zip(collected, weights))
            for name in collected[0]
        }
        model.load_state_dict(averaged)
        # The candidate's round lasts until the slowest shard finishes.
        return float(np.mean(accuracies)), float(np.max(shard_times))

    def step_generation(self) -> float:
        """Evaluate, select, and mutate; returns best fitness."""
        generation_time = 0.0
        for candidate in self.population:
            candidate.fitness, elapsed = self._federated_fitness(candidate)
            generation_time += elapsed
        self.simulated_time_s += generation_time

        self.population.sort(key=lambda c: c.fitness, reverse=True)
        survivors = self.population[: max(1, len(self.population) // 2)]
        offspring = []
        while len(survivors) + len(offspring) < self.config.population_size:
            parent = survivors[int(self.rng.integers(0, len(survivors)))]
            offspring.append(self._spawn(self._mutate(parent.mask)))
        self.population = survivors + offspring

        best = self.population[0].fitness
        self.recorder.record("best_fitness", best)
        self.recorder.record(
            "mean_fitness", float(np.mean([c.fitness for c in self.population]))
        )
        self.generation += 1
        return best

    @property
    def best(self) -> _Candidate:
        return max(self.population, key=lambda c: c.fitness)

    def derive(self) -> Genotype:
        return Genotype.from_mask(self.best.mask)

    def best_model(self) -> Supernet:
        return self.best.model

    def search(self, generations: int) -> SearchOutcome:
        for _ in range(generations):
            self.step_generation()
        mean_payload = float(state_size_bytes(self.best.model.state_dict()))
        return SearchOutcome(
            genotype=self.derive(),
            recorder=self.recorder,
            simulated_time_s=self.simulated_time_s,
            bytes_transferred=self.bytes_transferred,
            mean_payload_bytes=mean_payload,
        )
