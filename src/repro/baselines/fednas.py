"""FedNAS (He et al., 2020): federated gradient-based supernet search.

The federated gradient comparator of Tables IV-V.  Every participant
receives the **entire supernet** plus the architecture parameters, runs a
DARTS-style local step on its own data, and returns gradients for both;
the server averages and applies them.  This is exactly what makes it
expensive: the per-round payload is the whole supernet (the paper's
efficiency argument — our sub-models are ~1/N of that).

Communication and compute costs are tracked through the same virtual
accounting as our method so Table V comparisons are apples to apples.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

import repro.nn as nn
from repro.data import ArrayDataset, DataLoader
from repro.evaluation import CurveRecorder, batch_accuracy
from repro.nn import state_size_bytes
from repro.nn.functional import softmax
from repro.search_space import (
    NUM_OPERATIONS,
    Genotype,
    Supernet,
    SupernetConfig,
    derive_genotype,
)

from .common import SearchOutcome
from ..federated.participant import DeviceProfile, GTX_1080TI

__all__ = ["FedNasConfig", "FedNasSearcher"]


@dataclasses.dataclass
class FedNasConfig:
    w_lr: float = 0.025
    w_momentum: float = 0.9
    w_weight_decay: float = 3e-4
    w_grad_clip: float = 5.0
    alpha_lr: float = 3e-4
    alpha_weight_decay: float = 1e-3
    batch_size: int = 16


class FedNasSearcher:
    """Federated DARTS: whole-supernet gradients averaged at the server."""

    def __init__(
        self,
        config: SupernetConfig,
        shards: Sequence[ArrayDataset],
        fednas_config: Optional[FedNasConfig] = None,
        device: DeviceProfile = GTX_1080TI,
        rng: Optional[np.random.Generator] = None,
    ):
        if not shards:
            raise ValueError("at least one shard required")
        self.rng = rng or np.random.default_rng()
        self.net_config = config
        self.config = fednas_config or FedNasConfig()
        self.device = device
        self.supernet = Supernet(config, rng=self.rng)
        e = config.num_edges
        self.alpha_normal = nn.Parameter(1e-3 * self.rng.standard_normal((e, NUM_OPERATIONS)))
        self.alpha_reduce = nn.Parameter(1e-3 * self.rng.standard_normal((e, NUM_OPERATIONS)))
        self.w_optimizer = nn.SGD(
            self.supernet.parameters(),
            lr=self.config.w_lr,
            momentum=self.config.w_momentum,
            weight_decay=self.config.w_weight_decay,
        )
        self.alpha_optimizer = nn.Adam(
            [self.alpha_normal, self.alpha_reduce],
            lr=self.config.alpha_lr,
            weight_decay=self.config.alpha_weight_decay,
        )
        self.loaders = [
            DataLoader(
                shard,
                batch_size=min(self.config.batch_size, len(shard)),
                rng=np.random.default_rng(self.rng.integers(2**32)),
            )
            for shard in shards
        ]
        self.recorder = CurveRecorder()
        self.simulated_time_s = 0.0
        self.bytes_transferred = 0.0
        self.supernet_bytes = float(state_size_bytes(self.supernet.state_dict()))

    def round(self) -> float:
        """One communication round; returns mean participant accuracy."""
        w_params = self.supernet.parameters()
        w_grad_sum = [np.zeros_like(p.data) for p in w_params]
        a_grad_sum = [
            np.zeros_like(self.alpha_normal.data),
            np.zeros_like(self.alpha_reduce.data),
        ]
        accuracies: List[float] = []
        compute_times: List[float] = []

        for loader in self.loaders:
            x, y = loader.sample_batch()
            self.supernet.zero_grad()
            self.alpha_normal.zero_grad()
            self.alpha_reduce.zero_grad()
            weights_n = softmax(self.alpha_normal, axis=-1)
            weights_r = softmax(self.alpha_reduce, axis=-1)
            logits = self.supernet.forward_mixed(x, weights_n, weights_r)
            loss = nn.functional.cross_entropy(logits, y)
            loss.backward()
            for i, p in enumerate(w_params):
                if p.grad is not None:
                    w_grad_sum[i] += p.grad
            if self.alpha_normal.grad is not None:
                a_grad_sum[0] += self.alpha_normal.grad
            if self.alpha_reduce.grad is not None:
                a_grad_sum[1] += self.alpha_reduce.grad
            accuracies.append(batch_accuracy(logits, y))
            # Every participant trains the full supernet (the N-fold cost).
            compute_times.append(
                self.device.train_time(self.supernet.num_parameters(), len(y))
            )
            self.bytes_transferred += 2 * self.supernet_bytes  # down + up

        k = len(self.loaders)
        self.supernet.zero_grad()
        for i, p in enumerate(w_params):
            p.grad = w_grad_sum[i] / k
        nn.clip_grad_norm(w_params, self.config.w_grad_clip)
        self.w_optimizer.step()

        self.alpha_normal.grad = a_grad_sum[0] / k
        self.alpha_reduce.grad = a_grad_sum[1] / k
        self.alpha_optimizer.step()

        self.simulated_time_s += float(np.max(compute_times))
        mean_accuracy = float(np.mean(accuracies))
        self.recorder.record("train_accuracy", mean_accuracy)
        return mean_accuracy

    def derive(self) -> Genotype:
        return derive_genotype(
            np.stack([self.alpha_normal.data, self.alpha_reduce.data])
        )

    def search(self, rounds: int) -> SearchOutcome:
        for _ in range(rounds):
            self.round()
        return SearchOutcome(
            genotype=self.derive(),
            recorder=self.recorder,
            simulated_time_s=self.simulated_time_s,
            bytes_transferred=self.bytes_transferred,
            mean_payload_bytes=self.supernet_bytes,
        )
