"""Reproduction of *Federated Model Search via Reinforcement Learning*
(Yao, Wang, Xu, Xiang, Shao, Chen, Tong — ICDCS 2021).

An RL-based federated neural-architecture-search system on a from-scratch
numpy deep-learning substrate:

* :mod:`repro.nn` — autograd tensors, conv nets, optimizers;
* :mod:`repro.data` — synthetic CIFAR/SVHN stand-ins, Dirichlet non-iid
  partitioning, the paper's augmentation recipe;
* :mod:`repro.search_space` — the DARTS cell space, supernet, sub-model
  pruning, genotypes;
* :mod:`repro.controller` — the architecture-matrix RL policy and
  REINFORCE machinery;
* :mod:`repro.network` — 4G/LTE bandwidth traces and adaptive
  transmission;
* :mod:`repro.federated` — participants, the delay-compensated soft-sync
  server (Alg. 1), FedAvg;
* :mod:`repro.baselines` — DARTS, ENAS, FedNAS, EvoFedNAS, fixed models;
* :mod:`repro.core` — experiment configs and the four-phase pipeline;
* :mod:`repro.telemetry` — structured events, metrics, spans, JSONL run
  logs, and the ``python -m repro trace`` analyzer;
* :mod:`repro.faults` — seeded, deterministic fault injection (corrupted
  updates, drops, availability flaps, forced crashes);
* :mod:`repro.checkpoint` — crash-consistent search checkpoints with
  bit-identical resume.

Quickstart::

    from repro import ExperimentConfig, FederatedModelSearch

    config = ExperimentConfig.small(non_iid=True, seed=0)
    report = FederatedModelSearch(config).run()
    print(report.genotype.describe(), report.test_accuracy)
"""

from . import checkpoint, compare, faults, reporting, telemetry
from .core import ExperimentConfig, FederatedModelSearch, SearchReport
from .evaluation import CurveRecorder, evaluate_accuracy
from .faults import FaultInjector, FaultPlan, FaultSpec, InjectedServerCrash
from .search_space import Genotype
from .telemetry import Telemetry

__version__ = "1.2.0"

__all__ = [
    "ExperimentConfig",
    "FederatedModelSearch",
    "SearchReport",
    "CurveRecorder",
    "evaluate_accuracy",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedServerCrash",
    "Genotype",
    "Telemetry",
    "__version__",
]
