"""Sub-model-to-participant assignment strategies (Sec. IV-B, Fig. 7).

Sub-models sampled in a round differ in size (convolutions are orders of
magnitude heavier than pooling or skip edges), and participants differ in
bandwidth.  The paper's *adaptive transmission* sorts both and matches the
largest sub-model to the fastest link, minimising the round's maximum
transmission latency.  Two baselines are implemented for Fig. 7:

* ``average`` — every participant receives an average-sized model, the
  convention of FedNAS/DP-FNAS/EvoFedNAS where all participants get the
  same payload;
* ``random`` — sub-models shuffled onto participants blindly.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from .traces import BandwidthTrace

__all__ = [
    "assign_adaptive",
    "assign_random",
    "TransmissionReport",
    "round_transmission",
    "STRATEGIES",
]


def assign_adaptive(
    sizes_bytes: Sequence[float], bandwidths_mbps: Sequence[float]
) -> np.ndarray:
    """Largest payload to fastest link (Alg. 1 lines 10-11).

    Returns ``assignment`` with ``assignment[participant] = model_index``.
    """
    sizes = np.asarray(sizes_bytes, dtype=float)
    bandwidths = np.asarray(bandwidths_mbps, dtype=float)
    if len(sizes) != len(bandwidths):
        raise ValueError(
            f"{len(sizes)} models vs {len(bandwidths)} participants"
        )
    # Descending model size matched with descending bandwidth.
    model_order = np.argsort(-sizes)
    participant_order = np.argsort(-bandwidths)
    assignment = np.empty(len(sizes), dtype=int)
    assignment[participant_order] = model_order
    return assignment


def assign_random(
    sizes_bytes: Sequence[float],
    bandwidths_mbps: Sequence[float],
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Uniformly random assignment (the "random" baseline of Fig. 7)."""
    sizes = np.asarray(sizes_bytes, dtype=float)
    if len(sizes) != len(bandwidths_mbps):
        raise ValueError(
            f"{len(sizes)} models vs {len(bandwidths_mbps)} participants"
        )
    rng = rng or np.random.default_rng()
    return rng.permutation(len(sizes))


@dataclasses.dataclass(frozen=True)
class TransmissionReport:
    """Latency outcome of dispatching one round of sub-models.

    ``latencies_s`` always reflects the *analytic* payload sizes (the
    paper's 4-bytes/scalar cost model — Fig. 7 parity).  When the caller
    also supplies exact on-wire sizes (``repro.nn.payload_size_bytes``,
    what the socket transport actually ships), ``wire_bytes`` /
    ``wire_latencies_s`` carry the measured counterpart under the *same*
    assignment.
    """

    latencies_s: np.ndarray
    assignment: np.ndarray
    #: exact on-wire payload bytes per participant (None when the caller
    #: only provided analytic sizes)
    wire_bytes: Optional[np.ndarray] = None
    #: transmission latencies recomputed from ``wire_bytes``
    wire_latencies_s: Optional[np.ndarray] = None

    @property
    def max_latency_s(self) -> float:
        return float(self.latencies_s.max())

    @property
    def mean_latency_s(self) -> float:
        return float(self.latencies_s.mean())

    @property
    def max_wire_latency_s(self) -> float:
        if self.wire_latencies_s is None:
            raise ValueError("report carries no measured wire sizes")
        return float(self.wire_latencies_s.max())


STRATEGIES = ("adaptive", "average", "random")


def round_transmission(
    sizes_bytes: Sequence[float],
    traces: Sequence[BandwidthTrace],
    strategy: str = "adaptive",
    start_time: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    wire_sizes_bytes: Optional[Sequence[float]] = None,
) -> TransmissionReport:
    """Latencies of sending one round of sub-models under ``strategy``.

    ``average`` replaces every payload by the round's mean size, modelling
    schemes that ship identical models to everyone.

    ``wire_sizes_bytes`` optionally carries the *exact* on-wire size of
    each sub-model (``repro.nn.payload_size_bytes``, aligned with
    ``sizes_bytes``).  Assignment and ``latencies_s`` are always driven
    by the analytic ``sizes_bytes`` (Fig. 7 parity); the wire sizes ride
    along through the same assignment and produce the measured
    ``wire_bytes`` / ``wire_latencies_s`` of the report.
    """
    sizes = np.asarray(sizes_bytes, dtype=float)
    if len(sizes) != len(traces):
        raise ValueError(f"{len(sizes)} models vs {len(traces)} traces")
    wire_sizes = None
    if wire_sizes_bytes is not None:
        wire_sizes = np.asarray(wire_sizes_bytes, dtype=float)
        if len(wire_sizes) != len(sizes):
            raise ValueError(
                f"{len(wire_sizes)} wire sizes vs {len(sizes)} models"
            )
    bandwidths = np.array([t.bandwidth_at(start_time) for t in traces])

    if strategy == "adaptive":
        assignment = assign_adaptive(sizes, bandwidths)
        payloads = sizes[assignment]
    elif strategy == "random":
        assignment = assign_random(sizes, bandwidths, rng)
        payloads = sizes[assignment]
    elif strategy == "average":
        assignment = np.arange(len(sizes))
        payloads = np.full(len(sizes), sizes.mean())
    else:
        raise ValueError(f"unknown strategy {strategy!r}; choose from {STRATEGIES}")

    latencies = np.array(
        [
            trace.transfer_time(payload, start_time)
            for trace, payload in zip(traces, payloads)
        ]
    )
    wire_bytes = wire_latencies = None
    if wire_sizes is not None:
        if strategy == "average":
            wire_bytes = np.full(len(sizes), wire_sizes.mean())
        else:
            wire_bytes = wire_sizes[assignment]
        wire_latencies = np.array(
            [
                trace.transfer_time(payload, start_time)
                for trace, payload in zip(traces, wire_bytes)
            ]
        )
    return TransmissionReport(
        latencies_s=latencies,
        assignment=assignment,
        wire_bytes=wire_bytes,
        wire_latencies_s=wire_latencies,
    )
