"""Sub-model-to-participant assignment strategies (Sec. IV-B, Fig. 7).

Sub-models sampled in a round differ in size (convolutions are orders of
magnitude heavier than pooling or skip edges), and participants differ in
bandwidth.  The paper's *adaptive transmission* sorts both and matches the
largest sub-model to the fastest link, minimising the round's maximum
transmission latency.  Two baselines are implemented for Fig. 7:

* ``average`` — every participant receives an average-sized model, the
  convention of FedNAS/DP-FNAS/EvoFedNAS where all participants get the
  same payload;
* ``random`` — sub-models shuffled onto participants blindly.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from .traces import BandwidthTrace

__all__ = [
    "assign_adaptive",
    "assign_random",
    "TransmissionReport",
    "round_transmission",
    "STRATEGIES",
]


def assign_adaptive(
    sizes_bytes: Sequence[float], bandwidths_mbps: Sequence[float]
) -> np.ndarray:
    """Largest payload to fastest link (Alg. 1 lines 10-11).

    Returns ``assignment`` with ``assignment[participant] = model_index``.
    """
    sizes = np.asarray(sizes_bytes, dtype=float)
    bandwidths = np.asarray(bandwidths_mbps, dtype=float)
    if len(sizes) != len(bandwidths):
        raise ValueError(
            f"{len(sizes)} models vs {len(bandwidths)} participants"
        )
    # Descending model size matched with descending bandwidth.
    model_order = np.argsort(-sizes)
    participant_order = np.argsort(-bandwidths)
    assignment = np.empty(len(sizes), dtype=int)
    assignment[participant_order] = model_order
    return assignment


def assign_random(
    sizes_bytes: Sequence[float],
    bandwidths_mbps: Sequence[float],
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Uniformly random assignment (the "random" baseline of Fig. 7)."""
    sizes = np.asarray(sizes_bytes, dtype=float)
    if len(sizes) != len(bandwidths_mbps):
        raise ValueError(
            f"{len(sizes)} models vs {len(bandwidths_mbps)} participants"
        )
    rng = rng or np.random.default_rng()
    return rng.permutation(len(sizes))


@dataclasses.dataclass(frozen=True)
class TransmissionReport:
    """Latency outcome of dispatching one round of sub-models."""

    latencies_s: np.ndarray
    assignment: np.ndarray

    @property
    def max_latency_s(self) -> float:
        return float(self.latencies_s.max())

    @property
    def mean_latency_s(self) -> float:
        return float(self.latencies_s.mean())


STRATEGIES = ("adaptive", "average", "random")


def round_transmission(
    sizes_bytes: Sequence[float],
    traces: Sequence[BandwidthTrace],
    strategy: str = "adaptive",
    start_time: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> TransmissionReport:
    """Latencies of sending one round of sub-models under ``strategy``.

    ``average`` replaces every payload by the round's mean size, modelling
    schemes that ship identical models to everyone.
    """
    sizes = np.asarray(sizes_bytes, dtype=float)
    if len(sizes) != len(traces):
        raise ValueError(f"{len(sizes)} models vs {len(traces)} traces")
    bandwidths = np.array([t.bandwidth_at(start_time) for t in traces])

    if strategy == "adaptive":
        assignment = assign_adaptive(sizes, bandwidths)
        payloads = sizes[assignment]
    elif strategy == "random":
        assignment = assign_random(sizes, bandwidths, rng)
        payloads = sizes[assignment]
    elif strategy == "average":
        assignment = np.arange(len(sizes))
        payloads = np.full(len(sizes), sizes.mean())
    else:
        raise ValueError(f"unknown strategy {strategy!r}; choose from {STRATEGIES}")

    latencies = np.array(
        [
            trace.transfer_time(payload, start_time)
            for trace, payload in zip(traces, payloads)
        ]
    )
    return TransmissionReport(latencies_s=latencies, assignment=assignment)
