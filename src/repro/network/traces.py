"""Synthetic 4G/LTE bandwidth traces per mobility mode.

The paper drives its adaptive-transmission experiment (Fig. 7) with the
4G/LTE Bandwidth Logs of van der Hooft et al. (IEEE Comm. Letters 2016):
real throughput measurements collected while moving on foot, by bicycle,
bus, tram, train, and car.  That dataset is not available offline, so we
generate traces from a first-order autoregressive model whose per-mode
mean, variability, and burstiness are calibrated to the published summary
statistics of the dataset (median throughputs in the tens of Mbps;
vehicular modes markedly burstier than pedestrian ones; train worst due
to tunnels and cell handovers).

The substitution preserves what the experiment consumes: a time-varying
per-participant bandwidth, ordered and dispersed like the real logs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["MOBILITY_MODES", "TraceSpec", "BandwidthTrace", "generate_trace", "mixed_traces"]


@dataclasses.dataclass(frozen=True)
class TraceSpec:
    """AR(1) throughput model for one mobility mode (Mbps at 1 Hz)."""

    name: str
    mean_mbps: float
    std_mbps: float
    #: lag-1 autocorrelation; higher = slower fading
    autocorrelation: float
    #: hard floor so transfers always complete
    floor_mbps: float = 0.5

    def __post_init__(self) -> None:
        if self.mean_mbps <= 0:
            raise ValueError(f"mean_mbps must be positive, got {self.mean_mbps}")
        if not 0.0 <= self.autocorrelation < 1.0:
            raise ValueError(
                f"autocorrelation must be in [0, 1), got {self.autocorrelation}"
            )


#: Mode-level calibration to the 4G/LTE Bandwidth Logs summary statistics.
MOBILITY_MODES: Dict[str, TraceSpec] = {
    "foot": TraceSpec("foot", mean_mbps=28.0, std_mbps=9.0, autocorrelation=0.95),
    "bicycle": TraceSpec("bicycle", mean_mbps=25.0, std_mbps=11.0, autocorrelation=0.92),
    "tram": TraceSpec("tram", mean_mbps=21.0, std_mbps=12.0, autocorrelation=0.88),
    "bus": TraceSpec("bus", mean_mbps=19.0, std_mbps=12.0, autocorrelation=0.85),
    "car": TraceSpec("car", mean_mbps=22.0, std_mbps=15.0, autocorrelation=0.80),
    "train": TraceSpec("train", mean_mbps=14.0, std_mbps=13.0, autocorrelation=0.75),
}


class BandwidthTrace:
    """A sampled throughput time series (Mbps at 1-second resolution).

    Provides the two queries the simulator needs: instantaneous bandwidth
    and the wall-clock time to move a payload starting at a given moment
    (integrating throughput across trace samples, wrapping cyclically for
    long simulations).
    """

    def __init__(self, samples_mbps: np.ndarray, mode: str = "custom"):
        samples = np.asarray(samples_mbps, dtype=float)
        if samples.ndim != 1 or len(samples) == 0:
            raise ValueError("trace must be a non-empty 1-D array")
        if np.any(samples <= 0):
            raise ValueError("trace bandwidth must be strictly positive")
        self.samples = samples
        self.mode = mode

    def __len__(self) -> int:
        return len(self.samples)

    def bandwidth_at(self, t: float) -> float:
        """Throughput (Mbps) at wall-clock second ``t`` (cyclic)."""
        if t < 0:
            raise ValueError(f"time must be non-negative, got {t}")
        return float(self.samples[int(t) % len(self.samples)])

    def mean_mbps(self) -> float:
        return float(self.samples.mean())

    def transfer_time(self, payload_bytes: float, start_time: float = 0.0) -> float:
        """Seconds to transfer ``payload_bytes`` starting at ``start_time``.

        Integrates the piecewise-constant throughput second by second.
        """
        if payload_bytes < 0:
            raise ValueError(f"payload must be non-negative, got {payload_bytes}")
        if payload_bytes == 0:
            return 0.0
        remaining_bits = payload_bytes * 8.0
        t = float(start_time)
        elapsed = 0.0
        # First, the fraction of the current second.
        while True:
            rate_bps = self.bandwidth_at(t) * 1e6
            second_boundary = np.floor(t) + 1.0
            window = second_boundary - t
            capacity = rate_bps * window
            if remaining_bits <= capacity:
                return elapsed + remaining_bits / rate_bps
            remaining_bits -= capacity
            elapsed += window
            t = second_boundary


def generate_trace(
    mode: str,
    duration_s: int = 600,
    rng: Optional[np.random.Generator] = None,
) -> BandwidthTrace:
    """Generate an AR(1) bandwidth trace for ``mode``."""
    if mode not in MOBILITY_MODES:
        raise ValueError(f"unknown mobility mode {mode!r}; choose from {sorted(MOBILITY_MODES)}")
    if duration_s < 1:
        raise ValueError(f"duration must be >= 1 second, got {duration_s}")
    spec = MOBILITY_MODES[mode]
    rng = rng or np.random.default_rng()
    rho = spec.autocorrelation
    innovation_std = spec.std_mbps * np.sqrt(1 - rho ** 2)
    samples = np.empty(duration_s)
    value = spec.mean_mbps + spec.std_mbps * rng.standard_normal()
    for i in range(duration_s):
        value = spec.mean_mbps + rho * (value - spec.mean_mbps) + innovation_std * rng.standard_normal()
        samples[i] = max(value, spec.floor_mbps)
    return BandwidthTrace(samples, mode=mode)


def mixed_traces(
    modes: Sequence[str],
    num_participants: int,
    duration_s: int = 600,
    rng: Optional[np.random.Generator] = None,
) -> list:
    """One trace per participant, cycling through ``modes``.

    ``mixed_traces(["bus", "car"], 10)`` reproduces the paper's
    "Bus+Car" setting: half the participants on buses, half in cars.
    """
    if not modes:
        raise ValueError("at least one mobility mode required")
    rng = rng or np.random.default_rng()
    return [
        generate_trace(modes[k % len(modes)], duration_s, rng)
        for k in range(num_participants)
    ]
