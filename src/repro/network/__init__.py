"""``repro.network`` — bandwidth traces and transmission scheduling."""

from .traces import (
    MOBILITY_MODES,
    BandwidthTrace,
    TraceSpec,
    generate_trace,
    mixed_traces,
)
from .transmission import (
    STRATEGIES,
    TransmissionReport,
    assign_adaptive,
    assign_random,
    round_transmission,
)

__all__ = [
    "MOBILITY_MODES",
    "BandwidthTrace",
    "TraceSpec",
    "generate_trace",
    "mixed_traces",
    "STRATEGIES",
    "TransmissionReport",
    "assign_adaptive",
    "assign_random",
    "round_transmission",
]
