"""Seeded per-round cohort sampling over the participant registry.

Each round the server draws a small cohort (10–1000) from the eligible
(active) population — the ``c_rate`` client-sampling loop of cross-device
FL.  Two strategies ship behind one interface:

* ``uniform`` — every eligible participant equally likely;
* ``weighted`` — selection probability proportional to device compute
  speed (a production-style bias toward fast devices; a Jetson TX2 is
  4× less likely than a GTX 1080 Ti to be drawn).

The sampler owns a private seeded RNG stream that only the server
advances — never the backends — so the cohort sequence is bit-identical
across serial/process/socket execution by construction.  The RNG state
is checkpointed through the :class:`repro.core.Stateful` protocol, so a
killed-and-resumed run draws the exact cohorts an uninterrupted run
would.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from .registry import ParticipantRegistry

__all__ = [
    "SAMPLER_STRATEGIES",
    "CohortSampler",
    "UniformCohortSampler",
    "WeightedCohortSampler",
    "build_sampler",
]

#: Strategies accepted by :func:`build_sampler` and ``cohort_strategy``.
SAMPLER_STRATEGIES = ("uniform", "weighted")

#: Domain separator for the cohort-sampling RNG stream.
_COHORT_STREAM = 0xC0407


class CohortSampler:
    """Base sampler: seeded RNG, clamping, and stable cohort ordering."""

    strategy = "uniform"

    def __init__(self, cohort_size: int, seed: int):
        if cohort_size < 1:
            raise ValueError(f"cohort_size must be >= 1, got {cohort_size}")
        self.cohort_size = int(cohort_size)
        self.rng = np.random.default_rng([_COHORT_STREAM, seed])

    def sample(self, registry: ParticipantRegistry, round_t: int) -> np.ndarray:
        """Draw this round's cohort (sorted ids, without replacement).

        Cohorts are clamped to the eligible population, so a heavily
        churned registry degrades gracefully instead of failing.  The
        ids come back sorted: dispatch order must be a function of the
        *selection set*, not of ``choice``'s internal ordering, for the
        per-participant seed streams to stay backend-independent.
        """
        eligible = registry.selectable_ids(round_t)
        if len(eligible) == 0:
            return np.empty(0, dtype=np.int64)
        size = min(self.cohort_size, len(eligible))
        return np.sort(self._choose(eligible, size, registry))

    def _choose(
        self, eligible: np.ndarray, size: int, registry: ParticipantRegistry
    ) -> np.ndarray:
        raise NotImplementedError

    # Stateful protocol -------------------------------------------------
    def state_dict(self) -> Mapping[str, object]:
        return {"strategy": self.strategy, "rng": self.rng.bit_generator.state}

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        if state.get("strategy") != self.strategy:
            raise ValueError(
                f"checkpoint sampler strategy {state.get('strategy')!r} does "
                f"not match configured strategy {self.strategy!r}"
            )
        self.rng.bit_generator.state = state["rng"]


class UniformCohortSampler(CohortSampler):
    """Every eligible participant equally likely."""

    strategy = "uniform"

    def _choose(
        self, eligible: np.ndarray, size: int, registry: ParticipantRegistry
    ) -> np.ndarray:
        return self.rng.choice(eligible, size=size, replace=False)


class WeightedCohortSampler(CohortSampler):
    """Selection probability proportional to device compute speed."""

    strategy = "weighted"

    def _choose(
        self, eligible: np.ndarray, size: int, registry: ParticipantRegistry
    ) -> np.ndarray:
        weights = registry.context.device_speeds(eligible)
        return self.rng.choice(
            eligible, size=size, replace=False, p=weights / weights.sum()
        )


def build_sampler(strategy: str, cohort_size: int, seed: int) -> CohortSampler:
    """Construct the sampler named by ``strategy``."""
    if strategy == "uniform":
        return UniformCohortSampler(cohort_size, seed)
    if strategy == "weighted":
        return WeightedCohortSampler(cohort_size, seed)
    raise ValueError(
        f"unknown cohort strategy {strategy!r}; choose from {SAMPLER_STRATEGIES}"
    )
