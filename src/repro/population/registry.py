"""Participant registry: the population as columnar records, not objects.

The cross-device regime registers far more participants than any round
touches.  The registry therefore stores one *record* per participant —
lifecycle state, batch-seed draw counter, dormancy deadline, join round
— as columnar numpy arrays (~25 bytes/participant), and materialises a
full :class:`~repro.federated.participant.Participant` only for the
participants actually sampled into a cohort.  Everything heavyweight
(the data shard, the device profile, the batch size) is derived on
demand from the shared :class:`PopulationContext`, a pure function of
the participant id, so server and workers reconstruct bit-identical
participants without ever shipping per-participant state.

Determinism: a participant's mini-batch seeds are *counter-derived* —
``seed_i = f(base_seed, participant, i)`` where ``i`` is the number of
seeds drawn so far.  The counter lives in the registry (one int64 per
participant), so materialised ``Participant`` objects are disposable:
throwing one away and re-materialising it later continues the exact
same seed sequence.  That is what makes kill/resume and lazy cohorts
bit-identical to a run that kept every object alive.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.data import ArrayDataset, Compose, ShardDescriptor, derive_shard
from repro.federated.executor import ParticipantSpec
from repro.federated.participant import (
    GTX_1080TI,
    JETSON_TX2,
    DeviceProfile,
    Participant,
)
from repro.telemetry import Telemetry

__all__ = [
    "LIFECYCLE_STATES",
    "PopulationContext",
    "ParticipantRecord",
    "ParticipantRegistry",
    "derive_batch_seed",
]

#: Lifecycle states a registered participant moves through (the churn
#: model drives the transitions; see :mod:`repro.population.churn`).
LIFECYCLE_STATES = ("active", "dormant", "departed")

_ACTIVE, _DORMANT, _DEPARTED = 0, 1, 2

#: Domain separator for the counter-derived batch-seed stream.
_BATCH_SEED_STREAM = 0xB5EED

#: Device profiles the context can assign, by name.
_DEVICE_PROFILES: Dict[str, DeviceProfile] = {
    GTX_1080TI.name: GTX_1080TI,
    JETSON_TX2.name: JETSON_TX2,
}


def derive_batch_seed(base_seed: int, participant: int, draw: int) -> int:
    """The ``draw``-th mini-batch seed of ``participant`` — a pure function.

    Replaces the per-participant stateful RNG stream of the eager path:
    the only state is the draw counter, so the sequence survives
    materialise/discard cycles and checkpoints as a single integer.
    """
    rng = np.random.default_rng([_BATCH_SEED_STREAM, base_seed, participant, draw])
    return int(rng.integers(0, 2**63))


@dataclasses.dataclass(frozen=True)
class PopulationContext:
    """Everything needed to rebuild any participant from its id.

    Picklable and immutable: the distributed backends ship one copy to
    each worker at initialisation (the base dataset is a few MB; the
    population may be 100k+), after which a worker can serve a task for
    *any* participant by deriving its spec locally — no per-round
    provisioning, no O(population) spec lists on the wire.
    """

    train_set: ArrayDataset
    base_seed: int
    scheme: str
    shard_size: int
    alpha: float
    batch_size: int
    transform: Optional[Compose] = None
    device_mix: Tuple[str, ...] = (GTX_1080TI.name, JETSON_TX2.name)

    def __post_init__(self) -> None:
        for name in self.device_mix:
            if name not in _DEVICE_PROFILES:
                raise ValueError(
                    f"unknown device profile {name!r}; choose from "
                    f"{sorted(_DEVICE_PROFILES)}"
                )
        if not self.device_mix:
            raise ValueError("device_mix must name at least one profile")

    def descriptor(self, participant: int) -> ShardDescriptor:
        return ShardDescriptor(
            scheme=self.scheme,
            seed=self.base_seed,
            participant=participant,
            size=self.shard_size,
            alpha=self.alpha,
        )

    def device(self, participant: int) -> DeviceProfile:
        return _DEVICE_PROFILES[self.device_mix[participant % len(self.device_mix)]]

    def device_speeds(self, participants: np.ndarray) -> np.ndarray:
        """Per-participant compute speed (1 / seconds-per-param-sample)."""
        speeds = np.array(
            [
                1.0 / _DEVICE_PROFILES[name].seconds_per_param_sample
                for name in self.device_mix
            ]
        )
        return speeds[np.asarray(participants) % len(self.device_mix)]

    def spec(self, participant: int) -> ParticipantSpec:
        """Materialise the worker-side slice of ``participant``."""
        shard = derive_shard(self.train_set, self.descriptor(participant))
        return ParticipantSpec(
            participant_id=participant,
            dataset=shard,
            batch_size=min(self.batch_size, len(shard)),
            transform=self.transform,
            device=self.device(participant),
        )


@dataclasses.dataclass(frozen=True)
class ParticipantRecord:
    """A read-only view of one registry row (for inspection/tests)."""

    participant_id: int
    state: str
    batch_seed_draws: int
    dormant_until: int
    joined_round: int


class _RegistryParticipant(Participant):
    """A cohort-materialised participant whose seed stream is the registry's.

    ``draw_batch_seed`` goes through the registry's draw counter instead
    of a private RNG, so discarding and re-materialising this object
    never perturbs the seed sequence.
    """

    def __init__(self, registry: "ParticipantRegistry", spec: ParticipantSpec, **kwargs):
        super().__init__(
            spec.participant_id,
            spec.dataset,
            batch_size=spec.batch_size,
            transform=spec.transform,
            device=spec.device,
            rng=np.random.default_rng(0),
            **kwargs,
        )
        self._registry = registry

    def draw_batch_seed(self) -> int:
        return self._registry.next_batch_seed(self.participant_id)


class ParticipantRegistry:
    """Columnar store of every registered participant's lightweight record.

    Construction is O(population) ints and touches **no shard data** —
    shards exist only for materialised cohort members.  Implements the
    :class:`repro.core.Stateful` protocol; the arrays land in the
    checkpoint's ``population.npz`` member.
    """

    def __init__(
        self,
        population: int,
        context: PopulationContext,
        telemetry: Optional[Telemetry] = None,
    ):
        if population < 1:
            raise ValueError(f"population must be >= 1, got {population}")
        self.context = context
        self.telemetry = telemetry or Telemetry.disabled()
        self._state = np.full(population, _ACTIVE, dtype=np.int8)
        self._draws = np.zeros(population, dtype=np.int64)
        self._dormant_until = np.full(population, -1, dtype=np.int64)
        self._joined_round = np.zeros(population, dtype=np.int64)
        #: cumulative count of Participant materialisations (observability
        #: + the "no eager shards" regression test hooks onto this)
        self.materializations = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_registered(self) -> int:
        return len(self._state)

    def counts(self) -> Dict[str, int]:
        return {
            "registered": int(len(self._state)),
            "active": int(np.sum(self._state == _ACTIVE)),
            "dormant": int(np.sum(self._state == _DORMANT)),
            "departed": int(np.sum(self._state == _DEPARTED)),
        }

    def record(self, participant: int) -> ParticipantRecord:
        return ParticipantRecord(
            participant_id=participant,
            state=LIFECYCLE_STATES[self._state[participant]],
            batch_seed_draws=int(self._draws[participant]),
            dormant_until=int(self._dormant_until[participant]),
            joined_round=int(self._joined_round[participant]),
        )

    def selectable_ids(self, round_t: int) -> np.ndarray:
        """Participants a cohort may be drawn from this round (active only)."""
        return np.flatnonzero(self._state == _ACTIVE)

    # ------------------------------------------------------------------
    # Lifecycle transitions (driven by the churn model)
    # ------------------------------------------------------------------
    def register(self, count: int, round_t: int) -> np.ndarray:
        """Append ``count`` fresh records; returns their new ids."""
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        start = len(self._state)
        self._state = np.concatenate(
            [self._state, np.full(count, _ACTIVE, dtype=np.int8)]
        )
        self._draws = np.concatenate([self._draws, np.zeros(count, dtype=np.int64)])
        self._dormant_until = np.concatenate(
            [self._dormant_until, np.full(count, -1, dtype=np.int64)]
        )
        self._joined_round = np.concatenate(
            [self._joined_round, np.full(count, round_t, dtype=np.int64)]
        )
        return np.arange(start, start + count, dtype=np.int64)

    def depart(self, participants: np.ndarray) -> None:
        """Permanent departure: never selectable again."""
        self._state[participants] = _DEPARTED
        self._dormant_until[participants] = -1

    def set_dormant(self, participants: np.ndarray, until_rounds: np.ndarray) -> None:
        """Temporary dropout flap: offline until the given round (exclusive)."""
        self._state[participants] = _DORMANT
        self._dormant_until[participants] = until_rounds

    def wake_due(self, round_t: int) -> np.ndarray:
        """Reactivate dormant participants whose flap has ended."""
        due = np.flatnonzero(
            (self._state == _DORMANT) & (self._dormant_until <= round_t)
        )
        if len(due):
            self._state[due] = _ACTIVE
            self._dormant_until[due] = -1
        return due

    # ------------------------------------------------------------------
    # Materialisation + batch seeds
    # ------------------------------------------------------------------
    def next_batch_seed(self, participant: int) -> int:
        draw = int(self._draws[participant])
        self._draws[participant] = draw + 1
        return derive_batch_seed(self.context.base_seed, participant, draw)

    def materialize(self, participant: int) -> Participant:
        """Build the full ``Participant`` for one sampled cohort member."""
        if not 0 <= participant < len(self._state):
            raise KeyError(f"participant {participant} is not registered")
        spec = self.context.spec(participant)
        self.materializations += 1
        return _RegistryParticipant(self, spec, telemetry=self.telemetry)

    def materialize_cohort(self, cohort: Iterable[int]) -> Dict[int, Participant]:
        return {int(k): self.materialize(int(k)) for k in cohort}

    # ------------------------------------------------------------------
    # Stateful protocol (checkpoint capture/restore)
    # ------------------------------------------------------------------
    def state_dict(self) -> Mapping[str, object]:
        return {
            "population": int(len(self._state)),
            "state": self._state.copy(),
            "draws": self._draws.copy(),
            "dormant_until": self._dormant_until.copy(),
            "joined_round": self._joined_round.copy(),
        }

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        population = int(state["population"])
        self._state = np.asarray(state["state"], dtype=np.int8).copy()
        self._draws = np.asarray(state["draws"], dtype=np.int64).copy()
        self._dormant_until = np.asarray(
            state["dormant_until"], dtype=np.int64
        ).copy()
        self._joined_round = np.asarray(state["joined_round"], dtype=np.int64).copy()
        if not (
            len(self._state)
            == len(self._draws)
            == len(self._dormant_until)
            == len(self._joined_round)
            == population
        ):
            raise ValueError(
                "registry state arrays disagree on the population size"
            )
