"""Seeded churn: joins, permanent departures, temporary dropout flaps.

Real device fleets are never static — devices enroll, disappear for
good, or flap offline for a few rounds.  :class:`ChurnPlan` describes
that evolution as a declarative JSON artefact (same shape as
``repro.faults.FaultPlan``: frozen, validated at construction,
round-trippable), and :class:`ChurnModel` executes it against the
registry with a private seeded RNG stream.

The model advances **server-side at round start, before cohort
sampling**, in a fixed draw order (wake → departures → dropouts →
joins), so the population trajectory — like the cohort sequence — is
bit-identical across execution backends and across kill/resume (the
RNG state is checkpointed through the ``Stateful`` protocol).

Dormant participants are simply not eligible for cohort selection; that
feeds the same offline/soft-sync accounting as a natural disconnect.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

import numpy as np

from .registry import ParticipantRegistry

__all__ = ["ChurnPlan", "ChurnModel"]

#: Domain separator for the churn RNG stream.
_CHURN_STREAM = 0xC0821


@dataclasses.dataclass(frozen=True)
class ChurnPlan:
    """How the registered population evolves, as a declarative artefact.

    ``join_rate`` is the expected number of new enrollments per round
    (Poisson); ``departure_prob`` and ``dropout_prob`` are per-active-
    participant per-round probabilities of leaving permanently or
    starting a temporary flap of ``dropout_rounds_min..max`` rounds.
    The plan applies on rounds in ``[round_start, round_end)``
    (half-open; ``round_end=None`` means forever).  ``seed`` isolates
    the churn RNG stream from every other stream in the run.
    """

    join_rate: float = 0.0
    departure_prob: float = 0.0
    dropout_prob: float = 0.0
    dropout_rounds_min: int = 1
    dropout_rounds_max: int = 3
    round_start: int = 0
    round_end: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.join_rate < 0:
            raise ValueError(f"join_rate must be >= 0, got {self.join_rate}")
        for name in ("departure_prob", "dropout_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.dropout_rounds_min < 1:
            raise ValueError(
                f"dropout_rounds_min must be >= 1, got {self.dropout_rounds_min}"
            )
        if self.dropout_rounds_max < self.dropout_rounds_min:
            raise ValueError(
                f"dropout_rounds_max ({self.dropout_rounds_max}) must be >= "
                f"dropout_rounds_min ({self.dropout_rounds_min})"
            )
        if self.round_start < 0:
            raise ValueError(f"round_start must be >= 0, got {self.round_start}")
        if self.round_end is not None and self.round_end <= self.round_start:
            raise ValueError(
                f"round_end ({self.round_end}) must be > round_start "
                f"({self.round_start}) or null"
            )

    def active(self, round_t: int) -> bool:
        """Whether churn applies on ``round_t`` (half-open window)."""
        if round_t < self.round_start:
            return False
        return self.round_end is None or round_t < self.round_end

    # ------------------------------------------------------------------
    # JSON round trip (the ``--churn-plan churn.json`` artefact)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ChurnPlan":
        if not isinstance(data, Mapping):
            raise ValueError(
                f"churn plan must be a dict, got {type(data).__name__}"
            )
        valid = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - valid)
        if unknown:
            raise ValueError(
                f"unknown churn plan key(s): {', '.join(unknown)}; "
                f"valid keys: {', '.join(sorted(valid))}"
            )
        return cls(**dict(data))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ChurnPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid churn plan JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ChurnPlan":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ValueError(f"cannot read churn plan {path!r}: {exc}") from exc
        return cls.from_json(text)


class ChurnModel:
    """Executes a :class:`ChurnPlan` against the registry, one round at a time."""

    def __init__(self, plan: ChurnPlan):
        self.plan = plan
        self.rng = np.random.default_rng([_CHURN_STREAM, plan.seed])

    def advance(self, registry: ParticipantRegistry, round_t: int) -> Dict[str, int]:
        """Evolve the population for ``round_t``; returns transition counts.

        Draw order is fixed (wake → departures → dropouts → joins) and
        every draw is vectorised over the active set, so a 100k-strong
        registry churns in microseconds and the RNG stream consumption
        is a pure function of the population trajectory.
        """
        stats = {"joined": 0, "departed": 0, "dropped_out": 0, "reactivated": 0}
        stats["reactivated"] = int(len(registry.wake_due(round_t)))
        if not self.plan.active(round_t):
            return stats
        plan = self.plan
        active = registry.selectable_ids(round_t)
        if plan.departure_prob > 0 and len(active):
            departing = active[self.rng.random(len(active)) < plan.departure_prob]
            if len(departing):
                registry.depart(departing)
                stats["departed"] = int(len(departing))
                active = np.setdiff1d(active, departing, assume_unique=True)
        if plan.dropout_prob > 0 and len(active):
            flapping = active[self.rng.random(len(active)) < plan.dropout_prob]
            if len(flapping):
                durations = self.rng.integers(
                    plan.dropout_rounds_min,
                    plan.dropout_rounds_max + 1,
                    size=len(flapping),
                )
                registry.set_dormant(flapping, round_t + durations)
                stats["dropped_out"] = int(len(flapping))
        if plan.join_rate > 0:
            joins = int(self.rng.poisson(plan.join_rate))
            if joins:
                registry.register(joins, round_t)
                stats["joined"] = joins
        return stats

    # Stateful protocol -------------------------------------------------
    def state_dict(self) -> Mapping[str, object]:
        return {"rng": self.rng.bit_generator.state}

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        self.rng.bit_generator.state = state["rng"]
