"""The population façade the server and pipeline talk to.

:class:`PopulationManager` bundles registry + sampler + churn model
behind the two calls the round loop needs — ``begin_round`` (churn, then
cohort selection, plus population telemetry) and ``materialize_cohort``
— and implements the ``Stateful`` protocol over all three components so
the checkpoint layer captures/restores them as one unit.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from repro.federated.participant import Participant
from repro.telemetry import Telemetry

from .churn import ChurnModel, ChurnPlan
from .registry import ParticipantRegistry, PopulationContext
from .sampler import CohortSampler, build_sampler

__all__ = ["PopulationManager", "build_population"]


class PopulationManager:
    """Registry + sampler + churn, wired to telemetry, as one handle."""

    def __init__(
        self,
        registry: ParticipantRegistry,
        sampler: CohortSampler,
        churn: Optional[ChurnModel] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.registry = registry
        self.sampler = sampler
        self.churn = churn
        self.telemetry = telemetry or Telemetry.disabled()

    @property
    def context(self) -> PopulationContext:
        return self.registry.context

    def begin_round(self, round_t: int) -> np.ndarray:
        """Advance churn, draw the round's cohort, emit population telemetry.

        Called exactly once per round, server-side, before any dispatch —
        the only place the sampler/churn RNG streams advance, which is
        what keeps cohorts bit-identical across execution backends and
        telemetry/tracing settings.
        """
        registry = self.registry
        if self.churn is not None:
            churn_stats = self.churn.advance(registry, round_t)
        else:
            churn_stats = {"reactivated": int(len(registry.wake_due(round_t)))}
        cohort = self.sampler.sample(registry, round_t)
        telemetry = self.telemetry
        if telemetry.enabled:
            counts = registry.counts()
            if self.churn is not None and any(churn_stats.values()):
                telemetry.emit("population.churn", round=round_t, **churn_stats)
            telemetry.emit(
                "population.round",
                round=round_t,
                cohort=int(len(cohort)),
                strategy=self.sampler.strategy,
                **counts,
            )
            telemetry.gauge("population.registered", counts["registered"])
            telemetry.gauge("population.active", counts["active"])
            telemetry.gauge("population.dormant", counts["dormant"])
            telemetry.gauge("population.departed", counts["departed"])
            telemetry.gauge("population.cohort_size", int(len(cohort)))
        return cohort

    def materialize_cohort(self, cohort: Iterable[int]) -> Dict[int, Participant]:
        return self.registry.materialize_cohort(cohort)

    # Stateful protocol -------------------------------------------------
    def state_dict(self) -> Mapping[str, object]:
        return {
            "registry": self.registry.state_dict(),
            "sampler": self.sampler.state_dict(),
            "churn": None if self.churn is None else self.churn.state_dict(),
        }

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        self.registry.load_state_dict(state["registry"])
        self.sampler.load_state_dict(state["sampler"])
        churn_state = state.get("churn")
        if (churn_state is None) != (self.churn is None):
            raise ValueError(
                "checkpoint and server disagree on whether a churn plan is "
                "attached; rebuild with the churn plan the checkpoint was "
                "saved with"
            )
        if self.churn is not None:
            self.churn.load_state_dict(churn_state)


def build_population(
    config, train_set, telemetry: Optional[Telemetry] = None
) -> PopulationManager:
    """Assemble the population subsystem from an ``ExperimentConfig``.

    The shard size defaults to ``min(len(train_set), max(2·batch_size,
    32))`` — enough local data for distinct mini-batches without scaling
    with the population (``population_shard_size`` overrides it).
    """
    shard_size = config.population_shard_size or min(
        len(train_set), max(2 * config.batch_size, 32)
    )
    context = PopulationContext(
        train_set=train_set,
        base_seed=config.seed,
        scheme="dirichlet" if config.non_iid else "iid",
        shard_size=shard_size,
        alpha=config.dirichlet_alpha,
        batch_size=config.batch_size,
    )
    registry = ParticipantRegistry(config.population, context, telemetry=telemetry)
    sampler = build_sampler(config.cohort_strategy, config.cohort_size, config.seed)
    churn = ChurnModel(ChurnPlan.load(config.churn_plan)) if config.churn_plan else None
    return PopulationManager(registry, sampler, churn, telemetry=telemetry)
