"""``repro.population`` — population-scale rounds for cross-device FL.

Decouples the *registered population* (possibly 100k+ devices) from the
*per-round working set* (a sampled cohort of 10–1000):

* :class:`ParticipantRegistry` — columnar lightweight records; full
  ``Participant`` objects are materialised lazily, only for sampled
  cohorts, so server memory stays O(cohort + params).
* :class:`CohortSampler` (``uniform`` / ``weighted``) — seeded,
  server-side cohort selection, bit-identical across execution backends.
* :class:`ChurnPlan` / :class:`ChurnModel` — seeded joins, permanent
  departures, and temporary dropout flaps evolving the population.
* :class:`PopulationManager` — the bundle the server drives, with one
  ``Stateful`` state_dict covering registry + sampler + churn RNG for
  bit-identical kill/resume.
"""

from .churn import ChurnModel, ChurnPlan
from .manager import PopulationManager, build_population
from .registry import (
    LIFECYCLE_STATES,
    ParticipantRecord,
    ParticipantRegistry,
    PopulationContext,
    derive_batch_seed,
)
from .sampler import (
    SAMPLER_STRATEGIES,
    CohortSampler,
    UniformCohortSampler,
    WeightedCohortSampler,
    build_sampler,
)

__all__ = [
    "LIFECYCLE_STATES",
    "SAMPLER_STRATEGIES",
    "ChurnModel",
    "ChurnPlan",
    "CohortSampler",
    "ParticipantRecord",
    "ParticipantRegistry",
    "PopulationContext",
    "PopulationManager",
    "UniformCohortSampler",
    "WeightedCohortSampler",
    "build_population",
    "build_sampler",
    "derive_batch_seed",
]
