"""Distributed tracing: cross-process trace propagation for local steps.

The server-side telemetry spans (:meth:`Telemetry.span`) only see the
coordinating process; with the process-pool or socket backends the
interesting time — the participant's local step — happens in a worker
that has no telemetry handle at all.  This module closes that gap:

* every dispatched :class:`~repro.federated.participant.LocalStepTask`
  carries a :class:`TraceContext` (``trace_id``, the server's parent
  span id, and the dispatch timestamp on the server timeline);
* workers run the step under a :class:`SpanRecorder` — a dependency-free
  phase timer that records spans *relative to its own start* (workers
  never need a synchronised clock), optionally with per-op
  :mod:`repro.nn` profiling (:class:`OpProfiler`, keyed by op name and
  input shape);
* the finished span payload rides back piggybacked on the
  :class:`~repro.federated.participant.ParticipantUpdate`;
* the backend (which holds the server telemetry handle and bracketed
  the task with dispatch/receive timestamps) merges the worker spans
  onto the server timeline with clock-offset correction
  (:func:`merge_task_spans`) and emits one ``trace.task`` event per
  traced task — the raw material for ``repro trace`` and its Chrome
  export.

Clock-offset model
------------------
Workers report spans relative to the recorder's start, plus the total
busy time.  The server knows when it sent the task (``dispatch_ts``)
and when the reply landed (``receive_ts``), both on its own timeline.
The non-compute remainder ``wire = (receive - dispatch) - busy`` is the
round-trip wire/queue time; assuming a symmetric path (the NTP
assumption), half of it precedes the step, so worker-relative time
``x`` maps to server time ``dispatch_ts + wire/2 + x``.  The correction
is exact for symmetric links and bounded by ``wire`` in the worst case
— and it never affects results: tracing is observation only.

Determinism contract: nothing in this module reads or advances any RNG,
and a traced step computes bit-identical updates — the recorder only
ever calls ``time.perf_counter``.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from typing import Dict, List, Optional, Tuple

__all__ = [
    "TraceContext",
    "SpanRecorder",
    "OpProfiler",
    "merge_task_spans",
    "emit_task_trace",
]


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """What a task carries so its worker spans can join the run's trace.

    ``dispatch_ts`` is informational (the server timeline moment the
    task was built); the *authoritative* dispatch/receive bracket is
    taken by the backend around the actual send, on the same clock.
    """

    trace_id: str
    parent_span_id: int
    dispatch_ts: float
    profile_ops: bool = False

    def to_wire(self) -> Dict:
        """Compact JSON-able form for the socket codec's task meta."""
        wire: Dict = {
            "id": self.trace_id,
            "parent": self.parent_span_id,
            "ts": round(self.dispatch_ts, 6),
        }
        if self.profile_ops:
            wire["ops"] = 1
        return wire

    @staticmethod
    def from_wire(wire: Dict) -> "TraceContext":
        return TraceContext(
            trace_id=str(wire["id"]),
            parent_span_id=int(wire["parent"]),
            dispatch_ts=float(wire["ts"]),
            profile_ops=bool(wire.get("ops", 0)),
        )


class OpProfiler:
    """Per-op forward timing via the :mod:`repro.nn` forward hook.

    Aggregates inclusive forward wall time keyed by ``(op name, input
    shape)``; nested module calls each count toward their own key, so a
    container's time includes its children's (read the table as an
    inclusive profile).  Install/uninstall nest correctly — the previous
    hook is restored.
    """

    def __init__(self):
        #: (op class name, shape string) -> [count, total seconds]
        self.stats: Dict[Tuple[str, str], List] = {}
        self._prev = None
        self._installed = False

    def _hook(self, module, args, duration: float) -> None:
        shape = getattr(args[0], "shape", None) if args else None
        key = (
            type(module).__name__,
            "x".join(str(d) for d in shape) if shape is not None else "?",
        )
        entry = self.stats.get(key)
        if entry is None:
            self.stats[key] = [1, duration]
        else:
            entry[0] += 1
            entry[1] += duration

    def install(self) -> None:
        from repro.nn.modules import set_forward_hook

        self._prev = set_forward_hook(self._hook)
        self._installed = True

    def uninstall(self) -> None:
        if not self._installed:
            return
        from repro.nn.modules import set_forward_hook

        set_forward_hook(self._prev)
        self._prev = None
        self._installed = False

    def rows(self) -> List[List]:
        """``[op, shape, count, total_s]`` rows, slowest first."""
        return [
            [op, shape, count, round(total, 6)]
            for (op, shape), (count, total) in sorted(
                self.stats.items(), key=lambda item: item[1][1], reverse=True
            )
        ]


class SpanRecorder:
    """Worker-side phase timer: flat spans relative to recorder start.

    Used around one local step.  ``payload()`` produces the JSON-able
    span tree that ships back on the update::

        {"total_s": ..., "spans": [[name, start_s, dur_s], ...],
         "ops": [[op, shape, count, total_s], ...]}   # only if profiling

    ``abort()`` discards the recording but still uninstalls the op hook
    — callers must reach one of ``payload()``/``abort()`` on every path
    (the hook is process-global in the worker).
    """

    def __init__(self, profile_ops: bool = False):
        self._t0 = time.perf_counter()
        self.spans: List[List] = []
        #: Extra JSON-able annotations merged into :meth:`payload` (e.g.
        #: the compiled engine's per-task ``"tape"`` counters).
        self.meta: Dict = {}
        self.profiler: Optional[OpProfiler] = None
        if profile_ops:
            self.profiler = OpProfiler()
            self.profiler.install()

    @contextlib.contextmanager
    def span(self, name: str):
        start = time.perf_counter() - self._t0
        try:
            yield self
        finally:
            duration = (time.perf_counter() - self._t0) - start
            self.spans.append([name, round(start, 6), round(duration, 6)])

    def payload(self) -> Dict:
        """Finish recording; uninstalls the op hook."""
        total = time.perf_counter() - self._t0
        if self.profiler is not None:
            self.profiler.uninstall()
        payload: Dict = {"total_s": round(total, 6), "spans": self.spans}
        if self.profiler is not None:
            payload["ops"] = self.profiler.rows()
        if self.meta:
            payload.update(self.meta)
        return payload

    def abort(self) -> None:
        """Discard the recording (failed step); uninstalls the op hook."""
        if self.profiler is not None:
            self.profiler.uninstall()
        self.spans = []


def null_span(name: str):
    """Span shim for untraced paths (``recorder or None`` call sites)."""
    return contextlib.nullcontext()


def merge_task_spans(
    payload: Dict, dispatch_ts: float, receive_ts: float
) -> Dict:
    """Map a worker span payload onto the server timeline.

    Implements the clock-offset model from the module docstring:
    ``offset = dispatch_ts + ((receive - dispatch) - busy) / 2``.  The
    offset is clamped so spans never start before their dispatch — a
    worker busier than its bracket (clock jitter) degrades gracefully.
    """
    busy = float(payload.get("total_s", 0.0))
    rtt = max(0.0, float(receive_ts) - float(dispatch_ts))
    wire = max(0.0, rtt - busy)
    offset = float(dispatch_ts) + wire / 2.0
    spans = [
        [name, round(offset + start, 6), dur]
        for name, start, dur in payload.get("spans", [])
    ]
    return {"spans": spans, "busy_s": busy, "wire_s": wire, "offset": offset}


def emit_task_trace(
    telemetry,
    *,
    backend: str,
    task,
    update,
    dispatch_ts: float,
    receive_ts: float,
    worker: str,
) -> None:
    """Emit the ``trace.task`` event that merges one worker span tree
    into the server's round timeline.

    No-op unless the update actually carries spans and telemetry is
    live, so untraced paths pay one attribute read.  Callers in threaded
    backends must hold their telemetry lock.
    """
    payload = getattr(update, "spans", None)
    if payload is None or not telemetry.enabled:
        return
    merged = merge_task_spans(payload, dispatch_ts, receive_ts)
    trace = getattr(task, "trace", None)
    fields: Dict = {
        "backend": backend,
        "round": task.round_index,
        "participant": task.participant_id,
        "worker": worker,
        "dispatch_ts": round(dispatch_ts, 6),
        "receive_ts": round(receive_ts, 6),
        "busy_s": round(merged["busy_s"], 6),
        "wire_s": round(merged["wire_s"], 6),
        "spans": merged["spans"],
    }
    if trace is not None:
        fields["trace_id"] = trace.trace_id
        fields["parent_span_id"] = trace.parent_span_id
    ops = payload.get("ops")
    if ops:
        fields["ops"] = ops
    tape = payload.get("tape")
    if tape:
        fields["tape"] = tape
    telemetry.emit("trace.task", **fields)
