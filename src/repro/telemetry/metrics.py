"""Counters, gauges, and streaming histograms for the search pipeline.

The registry is dependency-free and deterministic: histograms downsample
their reservoir with a private PRNG seeded from the *metric name*, so
two runs that observe the same values report the same quantiles — and
nothing here ever touches a global (or NumPy) RNG.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count (updates, drops, bytes, ...)."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self.value += amount

    def snapshot(self) -> Dict[str, float]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (current round, simulated clock, ...)."""

    def __init__(self, name: str):
        self.name = name
        self.value = float("nan")

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> Dict[str, float]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming distribution summary with p50/p95/max.

    Exact ``count``/``sum``/``min``/``max`` are always maintained.
    Quantiles come from a bounded reservoir (Vitter's Algorithm R): the
    first ``max_samples`` observations are stored verbatim; the i-th
    observation after that replaces a uniformly chosen slot with
    probability ``max_samples / i``, so the reservoir stays a uniform
    sample of everything seen.  The replacement draws come from a
    *private* ``random.Random`` seeded with ``crc32(name)`` — the
    downsampling is therefore a pure function of the metric name and the
    observation sequence: two runs that observe the same values in the
    same order report bit-identical quantiles, and no global or NumPy
    RNG state is ever touched.
    """

    def __init__(self, name: str, max_samples: int = 8192):
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.name = name
        self.max_samples = max_samples
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: List[float] = []
        #: deterministic per-name reservoir RNG (never the global RNG)
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            return
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < self.max_samples:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.max_samples:
                self._samples[slot] = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile (matches ``np.quantile`` defaults)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if not self._samples:
            return float("nan")
        ordered = sorted(self._samples)
        position = q * (len(ordered) - 1)
        lo = int(math.floor(position))
        hi = int(math.ceil(position))
        if lo == hi:
            return ordered[lo]
        weight = position - lo
        return ordered[lo] * (1.0 - weight) + ordered[hi] * weight

    def snapshot(self) -> Dict[str, float]:
        return {
            "type": "histogram",
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else float("nan"),
            "max": self.max if self.count else float("nan"),
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
        }


class MetricsRegistry:
    """Named metric instruments, created on first use.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for the same name as a different kind is a bug and raises.
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, max_samples: int = 8192) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, max_samples=max_samples)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a Histogram"
            )
        return metric

    def _get(self, name: str, kind):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a {kind.__name__}"
            )
        return metric

    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """All metrics as plain nested dicts (sorted by name)."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }
