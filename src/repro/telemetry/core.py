"""The :class:`Telemetry` handle threaded through the pipeline.

One object owns the event log (sequence numbers + timestamps + sink),
the metrics registry, and the span stack.  Every producer in the stack
(`FederatedSearchServer`, `Participant`, the phase runners) receives the
same handle; a disabled handle turns every call into an early-return
no-op so instrumentation can stay inline on hot paths.

Nothing in this module reads or advances an RNG — instrumentation must
never perturb seeded results.
"""

from __future__ import annotations

import contextlib
import os
import time
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry
from .sinks import EventSink, JsonlFileSink, MemorySink, NullSink, TeeSink

__all__ = ["Telemetry", "build_telemetry"]


class Telemetry:
    """Event log + metrics registry + span timers behind one handle.

    Parameters
    ----------
    sink:
        Where events go (default: in-memory ring buffer).
    enabled:
        When ``False`` every ``emit``/``span``/metric helper returns
        immediately without touching the clock or the sink.
    """

    def __init__(self, sink: Optional[EventSink] = None, enabled: bool = True):
        self.enabled = enabled
        self.sink: EventSink = sink if sink is not None else MemorySink()
        self.metrics = MetricsRegistry()
        #: distributed tracing (see :mod:`repro.telemetry.tracing`):
        #: when True the server attaches a trace context to every
        #: dispatched task and backends merge the worker span trees it
        #: earns back into this timeline.  Requires ``enabled``.
        self.tracing = False
        #: opt-in per-op ``repro.nn`` profiling inside traced local steps
        self.trace_ops = False
        #: run-scoped trace identifier carried by every trace context
        self.trace_id = f"{os.getpid():x}-{int(time.time() * 1e6) & 0xFFFFFFFF:08x}"
        self._seq = 0
        self._span_id = 0
        self._t0 = time.perf_counter()
        self._span_stack: List[Tuple[str, int]] = []

    @staticmethod
    def disabled() -> "Telemetry":
        """A no-op handle: null sink, emits and spans cost ~nothing."""
        return Telemetry(sink=NullSink(), enabled=False)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def emit(self, event: str, **fields) -> None:
        """Record one structured event (stamped with ``seq`` and ``ts``)."""
        if not self.enabled:
            return
        self._seq += 1
        record: Dict = {
            "seq": self._seq,
            "ts": round(time.perf_counter() - self._t0, 6),
            "event": event,
        }
        record.update(fields)
        self.sink.emit(record)

    def now(self) -> float:
        """Seconds on this handle's event timeline (same clock as ``ts``).

        Backends use it to bracket task dispatch/receive so worker span
        trees can be clock-offset-corrected onto the server timeline.
        """
        return time.perf_counter() - self._t0

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def span(self, name: str, **fields):
        """Time a block of work: ``with telemetry.span("search.round"):``.

        Emits ``span_start``/``span_end`` events (each carrying a
        process-unique ``span_id``), records the wall-clock duration into
        the ``span.<name>`` histogram, and restores the span stack even
        when the block raises (the ``span_end`` event then carries
        ``"error": True``).
        """
        if not self.enabled:
            yield None
            return
        depth = len(self._span_stack)
        self._span_id += 1
        span_id = self._span_id
        self._span_stack.append((name, span_id))
        self.emit("span_start", span=name, span_id=span_id, depth=depth, **fields)
        start = time.perf_counter()
        error = False
        try:
            yield self
        except BaseException:
            error = True
            raise
        finally:
            duration = time.perf_counter() - start
            self._span_stack.pop()
            self.metrics.histogram(f"span.{name}").observe(duration)
            end_fields = dict(
                span=name,
                span_id=span_id,
                depth=depth,
                duration_s=round(duration, 6),
            )
            if error:
                end_fields["error"] = True
            self.emit("span_end", **end_fields)

    @property
    def current_span(self) -> Optional[str]:
        return self._span_stack[-1][0] if self._span_stack else None

    @property
    def current_span_id(self) -> int:
        """ID of the innermost open span (0 when none is open)."""
        return self._span_stack[-1][1] if self._span_stack else 0

    # ------------------------------------------------------------------
    # Metric shorthands (cheap early-outs when disabled)
    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1.0) -> None:
        if self.enabled:
            self.metrics.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.histogram(name).observe(value)

    # ------------------------------------------------------------------
    # Lifecycle / export
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, Dict[str, float]]:
        return self.metrics.snapshot()

    def events(self) -> List[Dict]:
        """Buffered events, when the sink keeps any (MemorySink/Tee)."""
        sinks = self.sink.sinks if isinstance(self.sink, TeeSink) else [self.sink]
        for sink in sinks:
            if isinstance(sink, MemorySink):
                return sink.events
        return []

    def flush(self) -> None:
        self.sink.flush()

    def close(self) -> None:
        self.sink.close()


def build_telemetry(config) -> Telemetry:
    """Build the handle an :class:`~repro.core.ExperimentConfig` asks for.

    Default: enabled with an in-memory ring buffer.  Setting
    ``telemetry_log_path`` adds a JSONL file sink (truncating any
    existing file so one path is one run); ``telemetry_enabled=False``
    yields the no-op handle.  ``tracing_enabled``/``trace_ops`` switch on
    distributed tracing (and per-op profiling) for the run; tracing
    requires telemetry, so a disabled handle ignores both.
    """
    if not getattr(config, "telemetry_enabled", True):
        return Telemetry.disabled()
    sinks: List[EventSink] = [
        MemorySink(capacity=getattr(config, "telemetry_buffer_size", 65536))
    ]
    log_path = getattr(config, "telemetry_log_path", None)
    if log_path:
        open(log_path, "w", encoding="utf-8").close()
        sinks.append(JsonlFileSink(log_path))
    sink = sinks[0] if len(sinks) == 1 else TeeSink(sinks)
    telemetry = Telemetry(sink=sink)
    telemetry.tracing = bool(getattr(config, "tracing_enabled", False))
    telemetry.trace_ops = telemetry.tracing and bool(
        getattr(config, "trace_ops", False)
    )
    return telemetry
