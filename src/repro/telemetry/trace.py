"""Run-log analysis behind ``python -m repro trace <run.jsonl>``.

Consumes the JSONL event stream a :class:`~repro.telemetry.JsonlFileSink`
wrote (or the in-memory event list) and answers the questions the paper's
evaluation revolves around: where did wall-clock time go per phase, how
stale were the updates (Fig. 8), which participants were the slow links
(Fig. 7), and what did each round contribute (Table V).  Runs executed
with ``--backend socket`` additionally get a wire-traffic section built
from the ``transport.round`` events the socket backend emits (bytes on
the wire per round, live worker counts, retries/losses).
"""

from __future__ import annotations

import collections
import json
import warnings
from typing import Dict, Iterable, List, Sequence

__all__ = [
    "load_events",
    "summarize_trace",
    "render_trace",
    "export_chrome_trace",
]


class _EventList(List[Dict]):
    """Events plus a count of the malformed lines dropped on load."""

    malformed_lines: int = 0


def load_events(path: str, strict: bool = False) -> List[Dict]:
    """Parse a JSONL run log; blank lines are skipped, order preserved.

    Malformed lines — the normal tail of a log whose writer was killed
    mid-line, or a partial flush — are *skipped* with a warning; the
    returned list carries the drop count as ``.malformed_lines`` and
    :func:`summarize_trace` surfaces it.  Pass ``strict=True`` to raise
    :class:`ValueError` on the first bad line instead.
    """
    events = _EventList()
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{lineno}: bad JSONL line: {exc}"
                    ) from exc
                events.malformed_lines += 1
                warnings.warn(
                    f"{path}:{lineno}: skipping malformed JSONL line ({exc})",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            if isinstance(record, dict):
                events.append(record)
            else:
                if strict:
                    raise ValueError(
                        f"{path}:{lineno}: JSONL line is not an object"
                    )
                events.malformed_lines += 1
                warnings.warn(
                    f"{path}:{lineno}: skipping non-object JSONL line",
                    RuntimeWarning,
                    stacklevel=2,
                )
    return events


def summarize_trace(events: Sequence[Dict]) -> Dict:
    """Reduce an event stream to the trace report's raw numbers."""
    phases: List[Dict] = []
    staleness: Dict[int, int] = collections.Counter()
    outcomes: Dict[str, int] = collections.Counter()
    participants: Dict[int, Dict] = {}
    rounds: List[Dict] = []
    event_counts: Dict[str, int] = collections.Counter()
    timestamps: List[float] = []
    transport_rounds: List[Dict] = []
    dispatch_rounds: List[Dict] = []
    open_round: Dict = {}
    traced_rounds: List[Dict] = []
    op_totals: Dict[tuple, List] = {}
    health_latest: Dict[str, Dict] = {}
    fault_kinds: Dict[str, int] = collections.Counter()
    breaker_transitions: Dict[str, int] = collections.Counter()
    hedge_totals = {"hedges": 0, "wins": 0, "duplicates": 0}
    population_rounds: List[Dict] = []
    churn_totals = {"joined": 0, "departed": 0, "dropped_out": 0, "reactivated": 0}
    tape_totals = {"captured": 0, "replayed": 0, "fallbacks": 0, "cached_steps": 0}

    for event in events:
        name = event.get("event", "?")
        event_counts[name] += 1
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            timestamps.append(float(ts))

        if name == "phase_end":
            phases.append(
                {
                    "phase": event.get("phase", "?"),
                    "wall_s": float(event.get("duration_s", 0.0)),
                }
            )
        elif name == "arrival":
            staleness[int(event.get("staleness", 0))] += 1
            outcomes[event.get("outcome", "?")] += 1
        elif name == "dispatch":
            k = int(event.get("participant", -1))
            entry = participants.setdefault(
                k,
                {
                    "participant": k,
                    "dispatches": 0,
                    "bytes_total": 0.0,
                    "latency_total_s": 0.0,
                    "latency_max_s": 0.0,
                },
            )
            entry["dispatches"] += 1
            entry["bytes_total"] += float(event.get("bytes", 0.0))
            latency = float(event.get("latency_s", 0.0))
            entry["latency_total_s"] += latency
            entry["latency_max_s"] = max(entry["latency_max_s"], latency)
        elif name == "round_start":
            if isinstance(ts, (int, float)):
                open_round = {
                    "round": int(event.get("round", -1)),
                    "phase": event.get("phase", "?"),
                    "start_ts": float(ts),
                    "tasks": [],
                }
        elif name == "trace.task":
            if open_round and open_round["round"] == int(event.get("round", -1)):
                open_round["tasks"].append(event)
            for op, shape, count, total in event.get("ops", []):
                entry = op_totals.setdefault((str(op), str(shape)), [0, 0.0])
                entry[0] += int(count)
                entry[1] += float(total)
            tape_meta = event.get("tape")
            if isinstance(tape_meta, dict):
                tape_totals["captured"] += int(tape_meta.get("captured", 0))
                tape_totals["replayed"] += int(tape_meta.get("replayed", 0))
                tape_totals["fallbacks"] += int(tape_meta.get("fallback", 0))
                tape_totals["cached_steps"] = max(
                    tape_totals["cached_steps"],
                    int(tape_meta.get("cached_steps", 0)),
                )
        elif name == "round_end":
            if (
                open_round
                and open_round["round"] == int(event.get("round", -1))
                and open_round["tasks"]
                and isinstance(ts, (int, float))
            ):
                open_round["end_ts"] = float(ts)
                traced_rounds.append(open_round)
            open_round = {}
            rounds.append(
                {
                    "round": int(event.get("round", -1)),
                    "phase": event.get("phase", "?"),
                    "mean_reward": event.get("mean_reward"),
                    "num_fresh": int(event.get("num_fresh", 0)),
                    "num_stale_used": int(event.get("num_stale_used", 0)),
                    "num_dropped": int(event.get("num_dropped", 0)),
                    "num_offline": int(event.get("num_offline", 0)),
                    "duration_s": float(event.get("duration_s", 0.0)),
                    "max_latency_s": float(event.get("max_latency_s", 0.0)),
                }
            )
        elif name == "transport.round":
            transport_rounds.append(
                {
                    "round": int(event.get("round", -1)),
                    "workers_live": int(event.get("workers_live", 0)),
                    "tasks": int(event.get("tasks", 0)),
                    "failed": int(event.get("failed", 0)),
                    "bytes_sent": float(event.get("bytes_sent", 0.0)),
                    "bytes_received": float(event.get("bytes_received", 0.0)),
                }
            )
        elif name == "transport.health":
            # Per-round snapshot; the report shows the latest state of
            # each worker plus hedge totals accumulated across rounds.
            hedge_totals["hedges"] += int(event.get("hedges", 0))
            hedge_totals["wins"] += int(event.get("hedge_wins", 0))
            hedge_totals["duplicates"] += int(event.get("hedge_duplicates", 0))
            for worker in event.get("workers", []):
                if isinstance(worker, dict):
                    health_latest[str(worker.get("worker", "?"))] = dict(worker)
        elif name == "fault.network":
            fault_kinds[str(event.get("kind", "?"))] += 1
        elif name == "transport.breaker":
            breaker_transitions[str(event.get("worker", "?"))] += 1
        elif name == "dispatch.round":
            dispatch_rounds.append(
                {
                    "round": int(event.get("round", -1)),
                    "backend": event.get("backend", "?"),
                    "tasks": int(event.get("tasks", 0)),
                    "params_sent": int(event.get("params_sent", 0)),
                    "params_cached": int(event.get("params_cached", 0)),
                    "full_syncs": int(event.get("full_syncs", 0)),
                    "cache_misses": int(event.get("cache_misses", 0)),
                    "cache_hit": float(event.get("cache_hit", 0.0)),
                }
            )
        elif name == "population.round":
            population_rounds.append(
                {
                    "round": int(event.get("round", -1)),
                    "cohort": int(event.get("cohort", 0)),
                    "strategy": event.get("strategy", "?"),
                    "registered": int(event.get("registered", 0)),
                    "active": int(event.get("active", 0)),
                    "dormant": int(event.get("dormant", 0)),
                    "departed": int(event.get("departed", 0)),
                }
            )
        elif name == "population.churn":
            for key in churn_totals:
                churn_totals[key] += int(event.get(key, 0))

    total_phase_wall = sum(p["wall_s"] for p in phases) or 1.0
    for p in phases:
        p["share"] = p["wall_s"] / total_phase_wall
    participant_rows = sorted(
        participants.values(),
        key=lambda e: e["latency_total_s"] / max(e["dispatches"], 1),
        reverse=True,
    )
    for entry in participant_rows:
        entry["latency_mean_s"] = entry["latency_total_s"] / max(entry["dispatches"], 1)

    transport = None
    if transport_rounds:
        transport = {
            "rounds": transport_rounds,
            "bytes_sent_total": sum(r["bytes_sent"] for r in transport_rounds),
            "bytes_received_total": sum(
                r["bytes_received"] for r in transport_rounds
            ),
            "tasks_total": sum(r["tasks"] for r in transport_rounds),
            "failed_total": sum(r["failed"] for r in transport_rounds),
            "min_workers_live": min(r["workers_live"] for r in transport_rounds),
            "retries": event_counts.get("executor.task_retry", 0),
            "workers_lost": event_counts.get("transport.worker_lost", 0),
            "workers_respawned": event_counts.get(
                "transport.worker_respawned", 0
            ),
        }

    dispatch = None
    if dispatch_rounds:
        sent_total = sum(r["params_sent"] for r in dispatch_rounds)
        cached_total = sum(r["params_cached"] for r in dispatch_rounds)
        total = sent_total + cached_total
        dispatch = {
            "rounds": dispatch_rounds,
            "backend": dispatch_rounds[0]["backend"],
            "params_sent_total": sent_total,
            "params_cached_total": cached_total,
            "full_syncs_total": sum(r["full_syncs"] for r in dispatch_rounds),
            "cache_misses_total": sum(
                r["cache_misses"] for r in dispatch_rounds
            ),
            "cache_hit": (cached_total / total) if total else 0.0,
        }

    critical_path = None
    if traced_rounds:
        crit_rows = []
        for occ in traced_rounds:
            # The round's makespan ends with the last update to land; the
            # longest dispatch→compute→wire→aggregate chain runs through
            # that task.  Blame decomposes the wall exactly (up to clock
            # jitter where a worker reports busier than its bracket):
            # wall = wait-before-dispatch + compute + wire + aggregate.
            crit = max(occ["tasks"], key=lambda e: float(e.get("receive_ts", 0.0)))
            wall = occ["end_ts"] - occ["start_ts"]
            wait = float(crit.get("dispatch_ts", occ["start_ts"])) - occ["start_ts"]
            compute = float(crit.get("busy_s", 0.0))
            wire = float(crit.get("wire_s", 0.0))
            aggregate = occ["end_ts"] - float(crit.get("receive_ts", occ["end_ts"]))
            crit_rows.append(
                {
                    "round": occ["round"],
                    "phase": occ["phase"],
                    "wall_s": wall,
                    "wait_s": max(0.0, wait),
                    "compute_s": compute,
                    "wire_s": wire,
                    "aggregate_s": max(0.0, aggregate),
                    "participant": int(crit.get("participant", -1)),
                    "worker": str(crit.get("worker", "?")),
                    "tasks": len(occ["tasks"]),
                }
            )
        totals = {
            key: sum(r[key] for r in crit_rows)
            for key in ("wall_s", "wait_s", "compute_s", "wire_s", "aggregate_s")
        }
        # Normalize blame over the decomposed total rather than the raw
        # wall: clamping and wire-precision rounding can leave the
        # components a few microseconds off the bracketed wall, and the
        # fractions should always sum to exactly 1.
        blame_wall = (
            totals["wait_s"] + totals["compute_s"]
            + totals["wire_s"] + totals["aggregate_s"]
        ) or totals["wall_s"] or 1.0
        critical_path = {
            "rounds": crit_rows,
            "totals": totals,
            "blame": {
                "wait": totals["wait_s"] / blame_wall,
                "compute": totals["compute_s"] / blame_wall,
                "wire": totals["wire_s"] / blame_wall,
                "aggregate": totals["aggregate_s"] / blame_wall,
            },
        }

    health = None
    if health_latest or fault_kinds or breaker_transitions:
        health = {
            "workers": [health_latest[k] for k in sorted(health_latest)],
            "faults": dict(sorted(fault_kinds.items())),
            "breaker_transitions": dict(sorted(breaker_transitions.items())),
            "breaker_transitions_total": sum(breaker_transitions.values()),
            "hedges": hedge_totals["hedges"],
            "hedge_wins": hedge_totals["wins"],
            "hedge_duplicates": hedge_totals["duplicates"],
            "heartbeat_failures": event_counts.get(
                "transport.heartbeat_failed", 0
            ),
        }

    population = None
    if population_rounds:
        first, last = population_rounds[0], population_rounds[-1]
        cohorts = [r["cohort"] for r in population_rounds]
        population = {
            "rounds": population_rounds,
            "strategy": last["strategy"],
            "registered_first": first["registered"],
            "registered_last": last["registered"],
            "active_last": last["active"],
            "dormant_last": last["dormant"],
            "departed_last": last["departed"],
            "cohort_mean": sum(cohorts) / len(cohorts),
            "cohort_min": min(cohorts),
            "cohort_max": max(cohorts),
            "churn": dict(churn_totals),
        }

    tape = None
    tape_tasks = (
        tape_totals["captured"]
        + tape_totals["replayed"]
        + tape_totals["fallbacks"]
    )
    if tape_tasks:
        tape = dict(tape_totals)
        tape["tasks"] = tape_tasks
        tape["hit_rate"] = tape_totals["replayed"] / tape_tasks

    ops = None
    if op_totals:
        ops = [
            {"op": op, "shape": shape, "count": count, "total_s": total}
            for (op, shape), (count, total) in sorted(
                op_totals.items(), key=lambda item: item[1][1], reverse=True
            )
        ]

    return {
        "num_events": len(events),
        "malformed_lines": int(getattr(events, "malformed_lines", 0)),
        "wall_s": (max(timestamps) - min(timestamps)) if timestamps else 0.0,
        "simulated_s": sum(r["duration_s"] for r in rounds),
        "phases": phases,
        "staleness": dict(sorted(staleness.items())),
        "outcomes": dict(sorted(outcomes.items())),
        "participants": participant_rows,
        "rounds": rounds,
        "transport": transport,
        "health": health,
        "dispatch": dispatch,
        "population": population,
        "critical_path": critical_path,
        "ops": ops,
        "tape": tape,
        "event_counts": dict(sorted(event_counts.items())),
    }


def _bar(count: int, peak: int, width: int = 40) -> str:
    filled = int(round(width * count / peak)) if peak else 0
    return "#" * max(filled, 1 if count else 0)


def render_trace(summary: Dict, top: int = 5, max_round_rows: int = 20) -> str:
    """Human-readable trace report (per-phase, staleness, per-round)."""
    from repro.reporting import markdown_table

    lines: List[str] = []
    lines.append(
        f"events: {summary['num_events']}   "
        f"wall time: {summary['wall_s']:.3f} s   "
        f"simulated time: {summary['simulated_s']:.3f} s"
    )
    if summary.get("malformed_lines"):
        lines.append(
            f"warning: skipped {summary['malformed_lines']} malformed "
            "JSONL line(s) (truncated log tail?)"
        )

    lines.append("")
    lines.append("## Per-phase time breakdown")
    if summary["phases"]:
        lines.append(
            markdown_table(
                ["phase", "wall_s", "share_%"],
                [
                    [p["phase"], p["wall_s"], 100.0 * p["share"]]
                    for p in summary["phases"]
                ],
                precision=3,
            )
        )
    else:
        lines.append("(no phase_end events)")

    lines.append("")
    lines.append("## Staleness histogram (update arrivals)")
    if summary["staleness"]:
        peak = max(summary["staleness"].values())
        for tau, count in summary["staleness"].items():
            lines.append(f"  tau={tau:<3d} {count:>6d} {_bar(count, peak)}")
        outcome_text = ", ".join(
            f"{name}={count}" for name, count in summary["outcomes"].items()
        )
        lines.append(f"  outcomes: {outcome_text}")
    else:
        lines.append("(no arrival events)")

    lines.append("")
    lines.append(f"## Slowest participants (top {top} by mean dispatch latency)")
    if summary["participants"]:
        lines.append(
            markdown_table(
                ["participant", "dispatches", "mean_latency_s", "max_latency_s", "kB_sent"],
                [
                    [
                        e["participant"],
                        e["dispatches"],
                        e["latency_mean_s"],
                        e["latency_max_s"],
                        e["bytes_total"] / 1e3,
                    ]
                    for e in summary["participants"][:top]
                ],
                precision=4,
            )
        )
    else:
        lines.append("(no dispatch events)")

    lines.append("")
    lines.append("## Per-round summary")
    rounds = summary["rounds"]
    if rounds:
        shown = rounds[:max_round_rows]
        lines.append(
            markdown_table(
                ["round", "phase", "reward", "fresh", "stale", "dropped", "offline", "sim_s"],
                [
                    [
                        r["round"],
                        r["phase"],
                        float("nan") if r["mean_reward"] is None else r["mean_reward"],
                        r["num_fresh"],
                        r["num_stale_used"],
                        r["num_dropped"],
                        r["num_offline"],
                        r["duration_s"],
                    ]
                    for r in shown
                ],
                precision=3,
            )
        )
        if len(rounds) > len(shown):
            lines.append(f"... ({len(rounds) - len(shown)} more rounds)")
    else:
        lines.append("(no round_end events)")

    population = summary.get("population")
    if population:
        lines.append("")
        lines.append("## Population")
        churn = population["churn"]
        lines.append(
            f"  registered: {population['registered_first']} -> "
            f"{population['registered_last']}   "
            f"active: {population['active_last']}   "
            f"dormant: {population['dormant_last']}   "
            f"departed: {population['departed_last']}"
        )
        lines.append(
            f"  cohorts ({population['strategy']}): "
            f"mean {population['cohort_mean']:.1f}, "
            f"min {population['cohort_min']}, max {population['cohort_max']} "
            f"over {len(population['rounds'])} rounds"
        )
        lines.append(
            f"  churn totals: joined={churn['joined']}   "
            f"departed={churn['departed']}   "
            f"dropped_out={churn['dropped_out']}   "
            f"reactivated={churn['reactivated']}"
        )
        shown = population["rounds"][:max_round_rows]
        lines.append(
            markdown_table(
                ["round", "cohort", "registered", "active", "dormant", "departed"],
                [
                    [
                        r["round"],
                        r["cohort"],
                        r["registered"],
                        r["active"],
                        r["dormant"],
                        r["departed"],
                    ]
                    for r in shown
                ],
                precision=0,
            )
        )
        if len(population["rounds"]) > len(shown):
            lines.append(
                f"... ({len(population['rounds']) - len(shown)} more rounds)"
            )

    transport = summary.get("transport")
    if transport:
        lines.append("")
        lines.append("## Wire traffic (socket backend)")
        lines.append(
            f"  sent: {transport['bytes_sent_total'] / 1e3:.1f} kB   "
            f"received: {transport['bytes_received_total'] / 1e3:.1f} kB   "
            f"tasks: {transport['tasks_total']}   "
            f"failed: {transport['failed_total']}"
        )
        lines.append(
            f"  retries: {transport['retries']}   "
            f"workers lost: {transport['workers_lost']}   "
            f"respawned: {transport['workers_respawned']}   "
            f"min live workers: {transport['min_workers_live']}"
        )
        shown = transport["rounds"][:max_round_rows]
        lines.append(
            markdown_table(
                ["round", "workers", "tasks", "failed", "kB_sent", "kB_recv"],
                [
                    [
                        r["round"],
                        r["workers_live"],
                        r["tasks"],
                        r["failed"],
                        r["bytes_sent"] / 1e3,
                        r["bytes_received"] / 1e3,
                    ]
                    for r in shown
                ],
                precision=1,
            )
        )
        if len(transport["rounds"]) > len(shown):
            lines.append(
                f"... ({len(transport['rounds']) - len(shown)} more rounds)"
            )

    health = summary.get("health")
    if health:
        lines.append("")
        lines.append("## Worker health / chaos")
        if health["faults"]:
            fault_text = ", ".join(
                f"{kind}={count}" for kind, count in health["faults"].items()
            )
            lines.append(f"  injected wire faults: {fault_text}")
        lines.append(
            f"  breaker transitions: {health['breaker_transitions_total']}   "
            f"hedges: {health['hedges']}   "
            f"hedge wins: {health['hedge_wins']}   "
            f"duplicates discarded: {health['hedge_duplicates']}   "
            f"heartbeat failures: {health['heartbeat_failures']}"
        )
        if health["workers"]:
            lines.append(
                markdown_table(
                    [
                        "worker",
                        "state",
                        "score",
                        "ewma_rtt_ms",
                        "deadline_s",
                        "ok",
                        "failed",
                        "hb_fail",
                        "hedge_wins",
                    ],
                    [
                        [
                            w.get("worker", "?"),
                            w.get("state", "?"),
                            float(w.get("score", 0.0)),
                            (
                                float("nan")
                                if w.get("ewma_rtt_ms") is None
                                else float(w["ewma_rtt_ms"])
                            ),
                            float(w.get("deadline_s", 0.0)),
                            int(w.get("ok", 0)),
                            int(w.get("failed", 0)),
                            int(w.get("heartbeat_failures", 0)),
                            int(w.get("hedge_wins", 0)),
                        ]
                        for w in health["workers"]
                    ],
                    precision=3,
                )
            )

    dispatch = summary.get("dispatch")
    if dispatch:
        lines.append("")
        lines.append(f"## Delta dispatch ({dispatch['backend']} backend)")
        lines.append(
            f"  params sent: {dispatch['params_sent_total']}   "
            f"served from cache: {dispatch['params_cached_total']}   "
            f"cache hit: {100.0 * dispatch['cache_hit']:.1f}%"
        )
        lines.append(
            f"  full syncs: {dispatch['full_syncs_total']}   "
            f"cache misses (resyncs): {dispatch['cache_misses_total']}"
        )
        shown = dispatch["rounds"][:max_round_rows]
        lines.append(
            markdown_table(
                ["round", "tasks", "sent", "cached", "full_syncs", "misses", "hit_%"],
                [
                    [
                        r["round"],
                        r["tasks"],
                        r["params_sent"],
                        r["params_cached"],
                        r["full_syncs"],
                        r["cache_misses"],
                        100.0 * r["cache_hit"],
                    ]
                    for r in shown
                ],
                precision=1,
            )
        )
        if len(dispatch["rounds"]) > len(shown):
            lines.append(
                f"... ({len(dispatch['rounds']) - len(shown)} more rounds)"
            )

    critical = summary.get("critical_path")
    if critical:
        lines.append("")
        lines.append("## Critical path (per round)")
        blame = critical["blame"]
        lines.append(
            "  blame: "
            f"wait {100.0 * blame['wait']:.1f}%   "
            f"compute {100.0 * blame['compute']:.1f}%   "
            f"wire {100.0 * blame['wire']:.1f}%   "
            f"aggregate {100.0 * blame['aggregate']:.1f}%"
        )
        shown = critical["rounds"][:max_round_rows]
        lines.append(
            markdown_table(
                [
                    "round",
                    "wall_s",
                    "wait_s",
                    "compute_s",
                    "wire_s",
                    "aggregate_s",
                    "participant",
                    "worker",
                ],
                [
                    [
                        r["round"],
                        r["wall_s"],
                        r["wait_s"],
                        r["compute_s"],
                        r["wire_s"],
                        r["aggregate_s"],
                        r["participant"],
                        r["worker"],
                    ]
                    for r in shown
                ],
                precision=4,
            )
        )
        if len(critical["rounds"]) > len(shown):
            lines.append(
                f"... ({len(critical['rounds']) - len(shown)} more rounds)"
            )

    ops = summary.get("ops") or []
    forward_ops = [o for o in ops if not str(o["op"]).startswith("tape:")]
    if forward_ops:
        lines.append("")
        lines.append(f"## Per-op forward profile (top {top} by total time)")
        lines.append(
            markdown_table(
                ["op", "shape", "count", "total_s"],
                [
                    [o["op"], o["shape"], o["count"], o["total_s"]]
                    for o in forward_ops[:top]
                ],
                precision=4,
            )
        )

    tape = summary.get("tape")
    if tape:
        lines.append("")
        lines.append("## Tape (compiled compute engine)")
        lines.append(
            f"compiled tasks: {tape['tasks']}  "
            f"captures: {tape['captured']}  "
            f"replays: {tape['replayed']}  "
            f"fallbacks: {tape['fallbacks']}  "
            f"cached steps (max): {tape['cached_steps']}"
        )
        lines.append(f"tape hit-rate: {tape['hit_rate']:.1%}")
        replay_ops = [o for o in ops if str(o["op"]).startswith("tape:")]
        if replay_ops:
            lines.append("")
            lines.append(
                f"### Per-op replay profile (top {top} by total time)"
            )
            lines.append(
                markdown_table(
                    ["op", "count", "total_s", "mean_ms"],
                    [
                        [
                            o["op"][len("tape:"):],
                            o["count"],
                            o["total_s"],
                            1e3 * o["total_s"] / max(o["count"], 1),
                        ]
                        for o in replay_ops[:top]
                    ],
                    precision=4,
                )
            )

    return "\n".join(lines)


def export_chrome_trace(events: Sequence[Dict]) -> Dict:
    """Convert a run-log event stream to Chrome/Perfetto trace-event JSON.

    Load the result at ``chrome://tracing`` or https://ui.perfetto.dev.
    Layout: the server's telemetry spans form one track (pid 0), and
    every distinct worker seen in ``trace.task`` events gets its own
    thread track under a shared "workers" process (pid 1) — each traced
    task appears as a ``task r<round> p<participant>`` slice spanning
    dispatch→receive with its clock-corrected phase spans nested inside.
    All timestamps are microseconds on the server timeline.
    """
    trace_events: List[Dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": "server"},
        },
        {
            "ph": "M",
            "name": "process_name",
            "pid": 1,
            "tid": 0,
            "args": {"name": "workers"},
        },
    ]
    worker_tids: Dict[str, int] = {}

    for event in events:
        name = event.get("event")
        if name == "span_end":
            duration = float(event.get("duration_s", 0.0))
            end_ts = float(event.get("ts", 0.0))
            trace_events.append(
                {
                    "ph": "X",
                    "name": str(event.get("span", "?")),
                    "pid": 0,
                    "tid": 0,
                    "ts": round((end_ts - duration) * 1e6, 3),
                    "dur": round(duration * 1e6, 3),
                    "args": {"span_id": event.get("span_id", 0)},
                }
            )
        elif name == "trace.task":
            worker = str(event.get("worker", "?"))
            tid = worker_tids.get(worker)
            if tid is None:
                tid = len(worker_tids) + 1
                worker_tids[worker] = tid
                trace_events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": 1,
                        "tid": tid,
                        "args": {"name": f"worker {worker}"},
                    }
                )
            dispatch_ts = float(event.get("dispatch_ts", 0.0))
            receive_ts = float(event.get("receive_ts", dispatch_ts))
            trace_events.append(
                {
                    "ph": "X",
                    "name": (
                        f"task r{event.get('round', '?')} "
                        f"p{event.get('participant', '?')}"
                    ),
                    "pid": 1,
                    "tid": tid,
                    "ts": round(dispatch_ts * 1e6, 3),
                    "dur": round(max(0.0, receive_ts - dispatch_ts) * 1e6, 3),
                    "args": {
                        "busy_s": event.get("busy_s", 0.0),
                        "wire_s": event.get("wire_s", 0.0),
                        "trace_id": event.get("trace_id"),
                        "parent_span_id": event.get("parent_span_id"),
                    },
                }
            )
            for span_name, start, duration in event.get("spans", []):
                trace_events.append(
                    {
                        "ph": "X",
                        "name": str(span_name),
                        "pid": 1,
                        "tid": tid,
                        "ts": round(float(start) * 1e6, 3),
                        "dur": round(float(duration) * 1e6, 3),
                    }
                )

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}
