"""Run-log analysis behind ``python -m repro trace <run.jsonl>``.

Consumes the JSONL event stream a :class:`~repro.telemetry.JsonlFileSink`
wrote (or the in-memory event list) and answers the questions the paper's
evaluation revolves around: where did wall-clock time go per phase, how
stale were the updates (Fig. 8), which participants were the slow links
(Fig. 7), and what did each round contribute (Table V).  Runs executed
with ``--backend socket`` additionally get a wire-traffic section built
from the ``transport.round`` events the socket backend emits (bytes on
the wire per round, live worker counts, retries/losses).
"""

from __future__ import annotations

import collections
import json
from typing import Dict, Iterable, List, Sequence

__all__ = ["load_events", "summarize_trace", "render_trace"]


def load_events(path: str) -> List[Dict]:
    """Parse a JSONL run log; blank lines are skipped, order preserved."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: bad JSONL line: {exc}") from exc
    return events


def summarize_trace(events: Sequence[Dict]) -> Dict:
    """Reduce an event stream to the trace report's raw numbers."""
    phases: List[Dict] = []
    staleness: Dict[int, int] = collections.Counter()
    outcomes: Dict[str, int] = collections.Counter()
    participants: Dict[int, Dict] = {}
    rounds: List[Dict] = []
    event_counts: Dict[str, int] = collections.Counter()
    timestamps: List[float] = []
    transport_rounds: List[Dict] = []
    dispatch_rounds: List[Dict] = []

    for event in events:
        name = event.get("event", "?")
        event_counts[name] += 1
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            timestamps.append(float(ts))

        if name == "phase_end":
            phases.append(
                {
                    "phase": event.get("phase", "?"),
                    "wall_s": float(event.get("duration_s", 0.0)),
                }
            )
        elif name == "arrival":
            staleness[int(event.get("staleness", 0))] += 1
            outcomes[event.get("outcome", "?")] += 1
        elif name == "dispatch":
            k = int(event.get("participant", -1))
            entry = participants.setdefault(
                k,
                {
                    "participant": k,
                    "dispatches": 0,
                    "bytes_total": 0.0,
                    "latency_total_s": 0.0,
                    "latency_max_s": 0.0,
                },
            )
            entry["dispatches"] += 1
            entry["bytes_total"] += float(event.get("bytes", 0.0))
            latency = float(event.get("latency_s", 0.0))
            entry["latency_total_s"] += latency
            entry["latency_max_s"] = max(entry["latency_max_s"], latency)
        elif name == "round_end":
            rounds.append(
                {
                    "round": int(event.get("round", -1)),
                    "phase": event.get("phase", "?"),
                    "mean_reward": event.get("mean_reward"),
                    "num_fresh": int(event.get("num_fresh", 0)),
                    "num_stale_used": int(event.get("num_stale_used", 0)),
                    "num_dropped": int(event.get("num_dropped", 0)),
                    "num_offline": int(event.get("num_offline", 0)),
                    "duration_s": float(event.get("duration_s", 0.0)),
                    "max_latency_s": float(event.get("max_latency_s", 0.0)),
                }
            )
        elif name == "transport.round":
            transport_rounds.append(
                {
                    "round": int(event.get("round", -1)),
                    "workers_live": int(event.get("workers_live", 0)),
                    "tasks": int(event.get("tasks", 0)),
                    "failed": int(event.get("failed", 0)),
                    "bytes_sent": float(event.get("bytes_sent", 0.0)),
                    "bytes_received": float(event.get("bytes_received", 0.0)),
                }
            )
        elif name == "dispatch.round":
            dispatch_rounds.append(
                {
                    "round": int(event.get("round", -1)),
                    "backend": event.get("backend", "?"),
                    "tasks": int(event.get("tasks", 0)),
                    "params_sent": int(event.get("params_sent", 0)),
                    "params_cached": int(event.get("params_cached", 0)),
                    "full_syncs": int(event.get("full_syncs", 0)),
                    "cache_misses": int(event.get("cache_misses", 0)),
                    "cache_hit": float(event.get("cache_hit", 0.0)),
                }
            )

    total_phase_wall = sum(p["wall_s"] for p in phases) or 1.0
    for p in phases:
        p["share"] = p["wall_s"] / total_phase_wall
    participant_rows = sorted(
        participants.values(),
        key=lambda e: e["latency_total_s"] / max(e["dispatches"], 1),
        reverse=True,
    )
    for entry in participant_rows:
        entry["latency_mean_s"] = entry["latency_total_s"] / max(entry["dispatches"], 1)

    transport = None
    if transport_rounds:
        transport = {
            "rounds": transport_rounds,
            "bytes_sent_total": sum(r["bytes_sent"] for r in transport_rounds),
            "bytes_received_total": sum(
                r["bytes_received"] for r in transport_rounds
            ),
            "tasks_total": sum(r["tasks"] for r in transport_rounds),
            "failed_total": sum(r["failed"] for r in transport_rounds),
            "min_workers_live": min(r["workers_live"] for r in transport_rounds),
            "retries": event_counts.get("executor.task_retry", 0),
            "workers_lost": event_counts.get("transport.worker_lost", 0),
            "workers_respawned": event_counts.get(
                "transport.worker_respawned", 0
            ),
        }

    dispatch = None
    if dispatch_rounds:
        sent_total = sum(r["params_sent"] for r in dispatch_rounds)
        cached_total = sum(r["params_cached"] for r in dispatch_rounds)
        total = sent_total + cached_total
        dispatch = {
            "rounds": dispatch_rounds,
            "backend": dispatch_rounds[0]["backend"],
            "params_sent_total": sent_total,
            "params_cached_total": cached_total,
            "full_syncs_total": sum(r["full_syncs"] for r in dispatch_rounds),
            "cache_misses_total": sum(
                r["cache_misses"] for r in dispatch_rounds
            ),
            "cache_hit": (cached_total / total) if total else 0.0,
        }

    return {
        "num_events": len(events),
        "wall_s": (max(timestamps) - min(timestamps)) if timestamps else 0.0,
        "simulated_s": sum(r["duration_s"] for r in rounds),
        "phases": phases,
        "staleness": dict(sorted(staleness.items())),
        "outcomes": dict(sorted(outcomes.items())),
        "participants": participant_rows,
        "rounds": rounds,
        "transport": transport,
        "dispatch": dispatch,
        "event_counts": dict(sorted(event_counts.items())),
    }


def _bar(count: int, peak: int, width: int = 40) -> str:
    filled = int(round(width * count / peak)) if peak else 0
    return "#" * max(filled, 1 if count else 0)


def render_trace(summary: Dict, top: int = 5, max_round_rows: int = 20) -> str:
    """Human-readable trace report (per-phase, staleness, per-round)."""
    from repro.reporting import markdown_table

    lines: List[str] = []
    lines.append(
        f"events: {summary['num_events']}   "
        f"wall time: {summary['wall_s']:.3f} s   "
        f"simulated time: {summary['simulated_s']:.3f} s"
    )

    lines.append("")
    lines.append("## Per-phase time breakdown")
    if summary["phases"]:
        lines.append(
            markdown_table(
                ["phase", "wall_s", "share_%"],
                [
                    [p["phase"], p["wall_s"], 100.0 * p["share"]]
                    for p in summary["phases"]
                ],
                precision=3,
            )
        )
    else:
        lines.append("(no phase_end events)")

    lines.append("")
    lines.append("## Staleness histogram (update arrivals)")
    if summary["staleness"]:
        peak = max(summary["staleness"].values())
        for tau, count in summary["staleness"].items():
            lines.append(f"  tau={tau:<3d} {count:>6d} {_bar(count, peak)}")
        outcome_text = ", ".join(
            f"{name}={count}" for name, count in summary["outcomes"].items()
        )
        lines.append(f"  outcomes: {outcome_text}")
    else:
        lines.append("(no arrival events)")

    lines.append("")
    lines.append(f"## Slowest participants (top {top} by mean dispatch latency)")
    if summary["participants"]:
        lines.append(
            markdown_table(
                ["participant", "dispatches", "mean_latency_s", "max_latency_s", "kB_sent"],
                [
                    [
                        e["participant"],
                        e["dispatches"],
                        e["latency_mean_s"],
                        e["latency_max_s"],
                        e["bytes_total"] / 1e3,
                    ]
                    for e in summary["participants"][:top]
                ],
                precision=4,
            )
        )
    else:
        lines.append("(no dispatch events)")

    lines.append("")
    lines.append("## Per-round summary")
    rounds = summary["rounds"]
    if rounds:
        shown = rounds[:max_round_rows]
        lines.append(
            markdown_table(
                ["round", "phase", "reward", "fresh", "stale", "dropped", "offline", "sim_s"],
                [
                    [
                        r["round"],
                        r["phase"],
                        float("nan") if r["mean_reward"] is None else r["mean_reward"],
                        r["num_fresh"],
                        r["num_stale_used"],
                        r["num_dropped"],
                        r["num_offline"],
                        r["duration_s"],
                    ]
                    for r in shown
                ],
                precision=3,
            )
        )
        if len(rounds) > len(shown):
            lines.append(f"... ({len(rounds) - len(shown)} more rounds)")
    else:
        lines.append("(no round_end events)")

    transport = summary.get("transport")
    if transport:
        lines.append("")
        lines.append("## Wire traffic (socket backend)")
        lines.append(
            f"  sent: {transport['bytes_sent_total'] / 1e3:.1f} kB   "
            f"received: {transport['bytes_received_total'] / 1e3:.1f} kB   "
            f"tasks: {transport['tasks_total']}   "
            f"failed: {transport['failed_total']}"
        )
        lines.append(
            f"  retries: {transport['retries']}   "
            f"workers lost: {transport['workers_lost']}   "
            f"respawned: {transport['workers_respawned']}   "
            f"min live workers: {transport['min_workers_live']}"
        )
        shown = transport["rounds"][:max_round_rows]
        lines.append(
            markdown_table(
                ["round", "workers", "tasks", "failed", "kB_sent", "kB_recv"],
                [
                    [
                        r["round"],
                        r["workers_live"],
                        r["tasks"],
                        r["failed"],
                        r["bytes_sent"] / 1e3,
                        r["bytes_received"] / 1e3,
                    ]
                    for r in shown
                ],
                precision=1,
            )
        )
        if len(transport["rounds"]) > len(shown):
            lines.append(
                f"... ({len(transport['rounds']) - len(shown)} more rounds)"
            )

    dispatch = summary.get("dispatch")
    if dispatch:
        lines.append("")
        lines.append(f"## Delta dispatch ({dispatch['backend']} backend)")
        lines.append(
            f"  params sent: {dispatch['params_sent_total']}   "
            f"served from cache: {dispatch['params_cached_total']}   "
            f"cache hit: {100.0 * dispatch['cache_hit']:.1f}%"
        )
        lines.append(
            f"  full syncs: {dispatch['full_syncs_total']}   "
            f"cache misses (resyncs): {dispatch['cache_misses_total']}"
        )
        shown = dispatch["rounds"][:max_round_rows]
        lines.append(
            markdown_table(
                ["round", "tasks", "sent", "cached", "full_syncs", "misses", "hit_%"],
                [
                    [
                        r["round"],
                        r["tasks"],
                        r["params_sent"],
                        r["params_cached"],
                        r["full_syncs"],
                        r["cache_misses"],
                        100.0 * r["cache_hit"],
                    ]
                    for r in shown
                ],
                precision=1,
            )
        )
        if len(dispatch["rounds"]) > len(shown):
            lines.append(
                f"... ({len(dispatch['rounds']) - len(shown)} more rounds)"
            )

    return "\n".join(lines)
