"""Event sinks: where structured telemetry events go.

Every sink consumes plain ``dict`` events (JSON-serialisable, flat keys)
via :meth:`EventSink.emit`.  Sinks are deliberately dumb — ordering,
sequence numbers, and timestamps are stamped upstream by
:class:`~repro.telemetry.Telemetry`, so sinks can be swapped or combined
(:class:`TeeSink`) without changing what is recorded.
"""

from __future__ import annotations

import collections
import json
from typing import Deque, Dict, Iterable, List, Optional

__all__ = ["EventSink", "NullSink", "MemorySink", "JsonlFileSink", "TeeSink"]


class EventSink:
    """Interface: receives event dicts; optionally flushes/closes."""

    def emit(self, event: Dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered events to durable storage (no-op by default)."""

    def close(self) -> None:
        """Release resources; the sink must not be used afterwards."""


class NullSink(EventSink):
    """Discards everything with near-zero overhead."""

    def emit(self, event: Dict) -> None:
        pass


class MemorySink(EventSink):
    """Keeps the most recent ``capacity`` events in a ring buffer."""

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buffer: Deque[Dict] = collections.deque(maxlen=capacity)
        self.total_emitted = 0

    def emit(self, event: Dict) -> None:
        self._buffer.append(event)
        self.total_emitted += 1

    @property
    def events(self) -> List[Dict]:
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)


class JsonlFileSink(EventSink):
    """Appends one JSON object per line to ``path`` (the run log).

    Durability contract: the sink flushes whenever ``flush_every_events``
    events or ``flush_every_bytes`` bytes have accumulated since the last
    flush, so a run killed with ``kill -9`` loses at most the last
    (small) unflushed batch — the log stays usable (any torn final line
    is skipped by :func:`~repro.telemetry.load_events`).  Flushing
    reaches the OS page cache, which survives process death.
    """

    def __init__(
        self,
        path: str,
        flush_every_events: int = 64,
        flush_every_bytes: int = 32768,
    ):
        if flush_every_events < 1:
            raise ValueError(
                f"flush_every_events must be >= 1, got {flush_every_events}"
            )
        if flush_every_bytes < 1:
            raise ValueError(
                f"flush_every_bytes must be >= 1, got {flush_every_bytes}"
            )
        self.path = str(path)
        self.flush_every_events = int(flush_every_events)
        self.flush_every_bytes = int(flush_every_bytes)
        self._file = open(self.path, "a", encoding="utf-8")
        self.total_emitted = 0
        self._pending_events = 0
        self._pending_bytes = 0

    def emit(self, event: Dict) -> None:
        line = json.dumps(event, default=_jsonable) + "\n"
        self._file.write(line)
        self.total_emitted += 1
        self._pending_events += 1
        self._pending_bytes += len(line)
        if (
            self._pending_events >= self.flush_every_events
            or self._pending_bytes >= self.flush_every_bytes
        ):
            self.flush()

    def flush(self) -> None:
        if not self._file.closed:
            self._file.flush()
        self._pending_events = 0
        self._pending_bytes = 0

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()
        self._pending_events = 0
        self._pending_bytes = 0


class TeeSink(EventSink):
    """Fans every event out to several sinks (e.g. memory + file)."""

    def __init__(self, sinks: Iterable[EventSink]):
        self.sinks: List[EventSink] = list(sinks)

    def emit(self, event: Dict) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def _jsonable(value):
    """Fallback encoder for NumPy scalars and other array-likes."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return tolist()
    return str(value)
