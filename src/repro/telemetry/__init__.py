"""Structured telemetry: events, metrics, spans, and run-log analysis.

The search pipeline is a distributed-systems simulation — where time and
updates go each round (staleness, compensation, transmission latency,
phase timing) *is* the experiment.  This package makes those flows
observable without perturbing them:

* :class:`EventLog` semantics live on :class:`Telemetry` — structured
  events flow through pluggable sinks (:class:`MemorySink` ring buffer,
  :class:`JsonlFileSink`, :class:`NullSink`);
* :class:`MetricsRegistry` — counters, gauges, and streaming histograms
  (p50/p95/max) for round duration, transmission latency, payload bytes,
  reward, and policy entropy;
* ``with telemetry.span("search.round"):`` — wall-clock span timers that
  nest, survive exceptions, and feed the histogram registry;
* :func:`summarize_trace` / :func:`render_trace` — turn a JSONL run log
  into the per-phase/staleness/per-round breakdown behind
  ``python -m repro trace``.

Instrumentation is deterministic-safe by construction: nothing here
touches NumPy's (or any) RNG state, so seeded results are bit-identical
with telemetry enabled or disabled.
"""

from .core import Telemetry, build_telemetry
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .sinks import EventSink, JsonlFileSink, MemorySink, NullSink, TeeSink
from .trace import (
    export_chrome_trace,
    load_events,
    render_trace,
    summarize_trace,
)
from .tracing import (
    OpProfiler,
    SpanRecorder,
    TraceContext,
    emit_task_trace,
    merge_task_spans,
)

__all__ = [
    "Telemetry",
    "build_telemetry",
    "TraceContext",
    "SpanRecorder",
    "OpProfiler",
    "merge_task_spans",
    "emit_task_trace",
    "export_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "EventSink",
    "MemorySink",
    "JsonlFileSink",
    "NullSink",
    "TeeSink",
    "load_events",
    "summarize_trace",
    "render_trace",
]
