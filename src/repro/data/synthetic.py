"""Synthetic class-conditional image datasets.

The paper evaluates on CIFAR10, SVHN, and CIFAR100.  Those datasets cannot
be downloaded in this offline environment, so we generate synthetic
stand-ins that preserve the properties the evaluation depends on:

* **class-conditional structure** — each class owns a smooth spatial
  template (a random low-frequency field per channel); samples are noisy,
  randomly shifted, contrast-jittered renderings of their class template.
  Convolutional models with translation tolerance therefore beat
  non-spatial models, and architecture choice matters.
* **controllable difficulty** — ``noise`` and ``template_scale`` control
  class separability, letting "SVHN-like" (easier, lower error) and
  "CIFAR100-like" (harder, more classes) variants mirror the relative
  difficulty ordering of the real datasets.
* **a disjoint test set** drawn from the same generative process.

Presets :func:`synth_cifar10`, :func:`synth_svhn`, and
:func:`synth_cifar100` bundle the scaled-down defaults used across the
benchmark harness.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ArrayDataset",
    "SyntheticImageSpec",
    "generate_dataset",
    "synth_cifar10",
    "synth_svhn",
    "synth_cifar100",
]


@dataclasses.dataclass
class ArrayDataset:
    """An in-memory labelled image dataset (NCHW float images, int labels)."""

    images: np.ndarray
    labels: np.ndarray
    num_classes: int

    def __post_init__(self) -> None:
        if len(self.images) != len(self.labels):
            raise ValueError(
                f"images ({len(self.images)}) and labels ({len(self.labels)}) differ in length"
            )
        if self.images.ndim != 4:
            raise ValueError(f"images must be NCHW, got shape {self.images.shape}")
        self.labels = np.asarray(self.labels, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.images)

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return self.images.shape[1:]

    def subset(self, indices: Sequence[int]) -> "ArrayDataset":
        """Return a view-like dataset restricted to ``indices``."""
        indices = np.asarray(indices)
        return ArrayDataset(self.images[indices], self.labels[indices], self.num_classes)

    def class_counts(self) -> np.ndarray:
        """Number of samples per class, length ``num_classes``."""
        return np.bincount(self.labels, minlength=self.num_classes)

    def split(self, fraction: float, rng: np.random.Generator) -> Tuple["ArrayDataset", "ArrayDataset"]:
        """Randomly split into two datasets; first gets ``fraction`` of samples."""
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        perm = rng.permutation(len(self))
        cut = int(round(fraction * len(self)))
        return self.subset(perm[:cut]), self.subset(perm[cut:])


@dataclasses.dataclass(frozen=True)
class SyntheticImageSpec:
    """Generative recipe for a synthetic image-classification dataset."""

    num_classes: int = 10
    channels: int = 3
    image_size: int = 16
    train_per_class: int = 100
    test_per_class: int = 20
    #: number of low-frequency cosine components per template
    frequencies: int = 3
    #: amplitude of the class template relative to unit noise
    template_scale: float = 2.0
    #: standard deviation of additive pixel noise
    noise: float = 0.6
    #: maximum random translation (pixels) applied per sample
    max_shift: int = 2
    #: per-sample contrast jitter range [1-j, 1+j]
    contrast_jitter: float = 0.2


def _class_template(
    spec: SyntheticImageSpec, rng: np.random.Generator
) -> np.ndarray:
    """Draw one smooth spatial template of shape (C, H, W)."""
    size = spec.image_size
    yy, xx = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    template = np.zeros((spec.channels, size, size))
    for c in range(spec.channels):
        for _ in range(spec.frequencies):
            fy, fx = rng.uniform(0.5, 2.0, size=2)
            phase_y, phase_x = rng.uniform(0, 2 * np.pi, size=2)
            amplitude = rng.normal(0, 1)
            template[c] += amplitude * np.cos(
                2 * np.pi * fy * yy / size + phase_y
            ) * np.cos(2 * np.pi * fx * xx / size + phase_x)
    template *= spec.template_scale / max(np.abs(template).max(), 1e-9)
    return template


def _render_samples(
    template: np.ndarray, count: int, spec: SyntheticImageSpec, rng: np.random.Generator
) -> np.ndarray:
    """Render noisy, shifted, contrast-jittered samples of one class."""
    samples = np.empty((count,) + template.shape)
    for i in range(count):
        shifted = template
        if spec.max_shift > 0:
            dy, dx = rng.integers(-spec.max_shift, spec.max_shift + 1, size=2)
            shifted = np.roll(np.roll(template, dy, axis=1), dx, axis=2)
        contrast = 1.0 + rng.uniform(-spec.contrast_jitter, spec.contrast_jitter)
        samples[i] = contrast * shifted + rng.normal(0, spec.noise, size=template.shape)
    return samples


def generate_dataset(
    spec: SyntheticImageSpec, seed: int = 0
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Generate a (train, test) pair from ``spec``.

    The same ``seed`` always produces identical datasets; train and test
    are disjoint draws from the same class-conditional processes.
    """
    rng = np.random.default_rng(seed)
    templates = [_class_template(spec, rng) for _ in range(spec.num_classes)]

    def build(per_class: int) -> ArrayDataset:
        images, labels = [], []
        for cls, template in enumerate(templates):
            images.append(_render_samples(template, per_class, spec, rng))
            labels.append(np.full(per_class, cls))
        x = np.concatenate(images)
        y = np.concatenate(labels)
        perm = rng.permutation(len(x))
        return ArrayDataset(x[perm], y[perm], spec.num_classes)

    return build(spec.train_per_class), build(spec.test_per_class)


def synth_cifar10(
    seed: int = 0, train_per_class: int = 100, test_per_class: int = 20, image_size: int = 16
) -> Tuple[ArrayDataset, ArrayDataset]:
    """CIFAR10 stand-in: 10 classes, moderate difficulty."""
    spec = SyntheticImageSpec(
        num_classes=10,
        image_size=image_size,
        train_per_class=train_per_class,
        test_per_class=test_per_class,
        noise=0.6,
    )
    return generate_dataset(spec, seed=seed)


def synth_svhn(
    seed: int = 1, train_per_class: int = 100, test_per_class: int = 20, image_size: int = 16
) -> Tuple[ArrayDataset, ArrayDataset]:
    """SVHN stand-in: 10 classes, easier than CIFAR10 (as in the paper,
    where SVHN error rates are roughly half the CIFAR10 ones)."""
    spec = SyntheticImageSpec(
        num_classes=10,
        image_size=image_size,
        train_per_class=train_per_class,
        test_per_class=test_per_class,
        noise=0.4,
        template_scale=2.5,
    )
    return generate_dataset(spec, seed=seed)


def synth_cifar100(
    seed: int = 2, train_per_class: int = 50, test_per_class: int = 10, image_size: int = 16
) -> Tuple[ArrayDataset, ArrayDataset]:
    """CIFAR100 stand-in: more classes, fewer samples each, harder.

    Scaled to 20 classes (vs the paper's 100) to stay tractable on the
    numpy substrate while preserving the "more classes, higher error"
    relationship used by the transfer experiments.
    """
    spec = SyntheticImageSpec(
        num_classes=20,
        image_size=image_size,
        train_per_class=train_per_class,
        test_per_class=test_per_class,
        noise=0.7,
        template_scale=1.8,
    )
    return generate_dataset(spec, seed=seed)
