"""Data augmentation matching the paper's training recipe (Table I).

The paper applies cutout (length 16), random crop with 4-pixel padding
("random clip 4"), and random horizontal flips with probability 0.5.
Lengths scale with image size; the defaults here assume the 16x16 synthetic
images, i.e. half the paper's CIFAR resolution and half its cutout length.

All transforms operate on single CHW arrays and take an explicit RNG so
augmentation is reproducible.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

__all__ = [
    "Compose",
    "RandomCrop",
    "RandomHorizontalFlip",
    "Cutout",
    "Normalize",
    "standard_augmentation",
]

Transform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


class Compose:
    """Apply transforms in sequence."""

    def __init__(self, transforms: Sequence[Transform]):
        self.transforms = list(transforms)

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for transform in self.transforms:
            image = transform(image, rng)
        return image


class RandomCrop:
    """Zero-pad by ``padding`` pixels then crop back to the original size."""

    def __init__(self, padding: int = 2):
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        self.padding = padding

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.padding == 0:
            return image
        c, h, w = image.shape
        padded = np.pad(
            image, [(0, 0), (self.padding, self.padding), (self.padding, self.padding)]
        )
        top = rng.integers(0, 2 * self.padding + 1)
        left = rng.integers(0, 2 * self.padding + 1)
        return padded[:, top : top + h, left : left + w]


class RandomHorizontalFlip:
    def __init__(self, p: float = 0.5):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"flip probability must be in [0, 1], got {p}")
        self.p = p

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if rng.random() < self.p:
            return image[:, :, ::-1].copy()
        return image


class Cutout:
    """Zero out a random ``length`` x ``length`` square (DeVries & Taylor)."""

    def __init__(self, length: int = 8):
        if length < 0:
            raise ValueError(f"cutout length must be non-negative, got {length}")
        self.length = length

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.length == 0:
            return image
        c, h, w = image.shape
        cy = int(rng.integers(0, h))
        cx = int(rng.integers(0, w))
        half = self.length // 2
        y0, y1 = max(0, cy - half), min(h, cy + half)
        x0, x1 = max(0, cx - half), min(w, cx + half)
        out = image.copy()
        out[:, y0:y1, x0:x1] = 0.0
        return out


class Normalize:
    """Standardise with per-channel mean/std."""

    def __init__(self, mean: np.ndarray, std: np.ndarray):
        self.mean = np.asarray(mean, dtype=float).reshape(-1, 1, 1)
        self.std = np.asarray(std, dtype=float).reshape(-1, 1, 1)
        if np.any(self.std <= 0):
            raise ValueError("std must be strictly positive")

    def __call__(self, image: np.ndarray, rng: np.random.Generator = None) -> np.ndarray:
        return (image - self.mean) / self.std


def standard_augmentation(image_size: int = 16) -> Compose:
    """The paper's augmentation pipeline scaled to ``image_size``.

    Crop padding and cutout length scale proportionally from the paper's
    32-pixel CIFAR values (pad 4, cutout 16).
    """
    scale = image_size / 32.0
    return Compose(
        [
            RandomCrop(padding=max(1, int(round(4 * scale)))),
            RandomHorizontalFlip(0.5),
            Cutout(length=max(2, int(round(16 * scale)))),
        ]
    )
