"""Mini-batch iteration over :class:`~repro.data.synthetic.ArrayDataset`."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from .synthetic import ArrayDataset
from .transforms import Compose

__all__ = ["DataLoader"]


class DataLoader:
    """Batched, optionally shuffled and augmented, dataset iterator.

    Parameters
    ----------
    dataset:
        Source samples.
    batch_size:
        Number of samples per batch; the final batch may be smaller unless
        ``drop_last`` is set.
    shuffle:
        Reshuffle sample order at the start of every epoch.
    transform:
        Optional per-image augmentation applied at batch assembly time.
    rng:
        RNG driving shuffling and augmentation; pass a seeded generator
        for reproducible epochs.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int,
        shuffle: bool = True,
        transform: Optional[Compose] = None,
        drop_last: bool = False,
        rng: Optional[np.random.Generator] = None,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if len(dataset) == 0:
            raise ValueError("cannot iterate an empty dataset")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.transform = transform
        self.drop_last = drop_last
        self.rng = rng or np.random.default_rng()

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self.rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            batch = order[start : start + self.batch_size]
            if self.drop_last and len(batch) < self.batch_size:
                return
            images = self.dataset.images[batch]
            if self.transform is not None:
                images = np.stack(
                    [self.transform(image, self.rng) for image in images]
                )
            yield images, self.dataset.labels[batch]

    def sample_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """Draw one random batch (the participant-update primitive of
        Alg. 1, line 39: "Randomly sample a batch")."""
        size = min(self.batch_size, len(self.dataset))
        batch = self.rng.choice(len(self.dataset), size=size, replace=False)
        images = self.dataset.images[batch]
        if self.transform is not None:
            images = np.stack([self.transform(image, self.rng) for image in images])
        return images, self.dataset.labels[batch]
