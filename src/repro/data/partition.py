"""Dataset partitioning across federated participants.

The paper composes non-i.i.d. datasets following FedNAS: for each class,
the class's samples are distributed over all participants according to a
Dirichlet distribution ``Dir(0.5)``.  Smaller concentration parameters
produce heavier label skew.  An i.i.d. splitter and an exact equal splitter
(used by the number-of-participants study, Sec. VI-D) are also provided.

Two partitioning regimes coexist:

* **Eager** (:func:`dirichlet_partition` / :func:`iid_partition` /
  :func:`equal_partition`) — materialise every shard up front.  Right
  for the paper's cross-silo setting (~10 participants) where all
  shards are live for the whole run.
* **On demand** (:class:`ShardDescriptor` + :func:`derive_shard`) — a
  participant's local data is a pure function of ``(seed, participant
  id)``, derived only when that participant is actually sampled into a
  round's cohort.  This is what lets :mod:`repro.population` register
  100k+ participants without allocating a single shard: the registry
  stores descriptors (a few ints each), not datasets.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from .synthetic import ArrayDataset

__all__ = [
    "SHARD_SCHEMES",
    "ShardDescriptor",
    "derive_shard_indices",
    "derive_shard",
    "dirichlet_partition",
    "iid_partition",
    "equal_partition",
    "label_distribution",
    "skewness",
]

#: Schemes accepted by :class:`ShardDescriptor`.
SHARD_SCHEMES = ("iid", "dirichlet")

#: Domain separator mixed into every shard RNG seed so shard derivation
#: can never collide with the model/search/batch-seed streams.
_SHARD_STREAM = 0x5A4D


@dataclasses.dataclass(frozen=True)
class ShardDescriptor:
    """A participant's local data as a recipe, not as arrays.

    The shard is a deterministic pure function of the descriptor plus
    the shared base dataset: the per-participant RNG is seeded from
    ``(seed, participant)``, so any process — server or worker — can
    derive bit-identical indices without ever seeing the other
    participants' shards.  In the cross-device regime the population is
    much larger than the proxy dataset, so shards are *sampled views*
    (per-participant label mixtures) rather than a disjoint split.
    """

    scheme: str
    seed: int
    participant: int
    size: int
    alpha: float = 0.5

    def __post_init__(self) -> None:
        if self.scheme not in SHARD_SCHEMES:
            raise ValueError(
                f"shard scheme must be one of {SHARD_SCHEMES}, got {self.scheme!r}"
            )
        if self.participant < 0:
            raise ValueError(
                f"participant must be >= 0, got {self.participant}"
            )
        if self.size < 1:
            raise ValueError(f"shard size must be >= 1, got {self.size}")
        if self.alpha <= 0:
            raise ValueError(f"Dirichlet alpha must be positive, got {self.alpha}")


def derive_shard_indices(
    labels: np.ndarray, num_classes: int, descriptor: ShardDescriptor
) -> np.ndarray:
    """Derive one participant's sample indices from its descriptor.

    ``iid`` draws a uniform subset of the dataset; ``dirichlet`` first
    draws the participant's label mixture from ``Dir(alpha)`` and then
    samples per class accordingly (with replacement only when a class is
    oversubscribed, so tiny proxy datasets still work).  Indices come
    back sorted, matching the eager partitioners' convention.  Only this
    participant's indices are ever allocated — O(size), not O(dataset ×
    population).
    """
    labels = np.asarray(labels)
    rng = np.random.default_rng(
        [_SHARD_STREAM, descriptor.seed, descriptor.participant]
    )
    size = min(descriptor.size, len(labels)) if descriptor.scheme == "iid" else descriptor.size
    if descriptor.scheme == "iid":
        indices = rng.choice(len(labels), size=size, replace=False)
        return np.sort(indices)
    proportions = rng.dirichlet(np.full(num_classes, descriptor.alpha))
    drawn_classes = rng.choice(num_classes, size=size, p=proportions)
    pieces: List[np.ndarray] = []
    for cls in range(num_classes):
        count = int(np.sum(drawn_classes == cls))
        if count == 0:
            continue
        class_indices = np.flatnonzero(labels == cls)
        if len(class_indices) == 0:
            # Degenerate base set missing the class: fall back to uniform.
            pieces.append(rng.choice(len(labels), size=count, replace=True))
            continue
        pieces.append(
            rng.choice(class_indices, size=count, replace=count > len(class_indices))
        )
    return np.sort(np.concatenate(pieces))


def derive_shard(dataset: ArrayDataset, descriptor: ShardDescriptor) -> ArrayDataset:
    """Materialise the shard a :class:`ShardDescriptor` describes."""
    indices = derive_shard_indices(dataset.labels, dataset.num_classes, descriptor)
    return dataset.subset(indices)


def dirichlet_partition(
    dataset: ArrayDataset,
    num_participants: int,
    alpha: float = 0.5,
    rng: np.random.Generator = None,
    min_samples: int = 1,
) -> List[ArrayDataset]:
    """Split ``dataset`` into label-skewed shards via ``Dir(alpha)``.

    For every class, proportions over participants are drawn from a
    Dirichlet distribution and the class's samples are allotted
    accordingly.  Re-draws until every participant holds at least
    ``min_samples`` samples, so no shard is empty.
    """
    if num_participants < 1:
        raise ValueError(f"num_participants must be >= 1, got {num_participants}")
    if alpha <= 0:
        raise ValueError(f"Dirichlet alpha must be positive, got {alpha}")
    rng = rng or np.random.default_rng()

    for _ in range(100):
        shards: List[List[int]] = [[] for _ in range(num_participants)]
        for cls in range(dataset.num_classes):
            class_indices = np.flatnonzero(dataset.labels == cls)
            rng.shuffle(class_indices)
            proportions = rng.dirichlet(np.full(num_participants, alpha))
            # Convert proportions to split points over this class's samples.
            cuts = (np.cumsum(proportions) * len(class_indices)).astype(int)[:-1]
            for shard, piece in zip(shards, np.split(class_indices, cuts)):
                shard.extend(piece.tolist())
        if all(len(s) >= min_samples for s in shards):
            return [dataset.subset(np.array(sorted(s))) for s in shards]
    raise RuntimeError(
        f"could not produce {num_participants} non-empty shards after 100 draws; "
        f"dataset too small ({len(dataset)} samples) for alpha={alpha}"
    )


def iid_partition(
    dataset: ArrayDataset, num_participants: int, rng: np.random.Generator = None
) -> List[ArrayDataset]:
    """Shuffle and split into near-equal i.i.d. shards."""
    if num_participants < 1:
        raise ValueError(f"num_participants must be >= 1, got {num_participants}")
    rng = rng or np.random.default_rng()
    perm = rng.permutation(len(dataset))
    return [dataset.subset(piece) for piece in np.array_split(perm, num_participants)]


def equal_partition(
    dataset: ArrayDataset, num_participants: int, rng: np.random.Generator = None
) -> List[ArrayDataset]:
    """Class-stratified equal split (the Sec. VI-D "equally divide" setting).

    Every participant receives the same number of samples of every class
    (up to remainder truncation), so shards are exchangeable.
    """
    if num_participants < 1:
        raise ValueError(f"num_participants must be >= 1, got {num_participants}")
    rng = rng or np.random.default_rng()
    shards: List[List[int]] = [[] for _ in range(num_participants)]
    for cls in range(dataset.num_classes):
        class_indices = np.flatnonzero(dataset.labels == cls)
        rng.shuffle(class_indices)
        per = len(class_indices) // num_participants
        for k in range(num_participants):
            shards[k].extend(class_indices[k * per : (k + 1) * per].tolist())
    return [dataset.subset(np.array(sorted(s))) for s in shards]


def label_distribution(shards: List[ArrayDataset]) -> np.ndarray:
    """Matrix of per-shard class proportions, shape (K, num_classes)."""
    rows = []
    for shard in shards:
        counts = shard.class_counts().astype(float)
        rows.append(counts / max(counts.sum(), 1.0))
    return np.array(rows)


def skewness(shards: List[ArrayDataset]) -> float:
    """Mean total-variation distance between shard label distributions and
    the global label distribution.  0 for perfectly i.i.d. shards."""
    dist = label_distribution(shards)
    sizes = np.array([len(s) for s in shards], dtype=float)
    overall = (dist * sizes[:, None]).sum(axis=0) / sizes.sum()
    return float(np.mean(np.abs(dist - overall).sum(axis=1) / 2.0))
