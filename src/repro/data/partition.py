"""Dataset partitioning across federated participants.

The paper composes non-i.i.d. datasets following FedNAS: for each class,
the class's samples are distributed over all participants according to a
Dirichlet distribution ``Dir(0.5)``.  Smaller concentration parameters
produce heavier label skew.  An i.i.d. splitter and an exact equal splitter
(used by the number-of-participants study, Sec. VI-D) are also provided.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .synthetic import ArrayDataset

__all__ = [
    "dirichlet_partition",
    "iid_partition",
    "equal_partition",
    "label_distribution",
    "skewness",
]


def dirichlet_partition(
    dataset: ArrayDataset,
    num_participants: int,
    alpha: float = 0.5,
    rng: np.random.Generator = None,
    min_samples: int = 1,
) -> List[ArrayDataset]:
    """Split ``dataset`` into label-skewed shards via ``Dir(alpha)``.

    For every class, proportions over participants are drawn from a
    Dirichlet distribution and the class's samples are allotted
    accordingly.  Re-draws until every participant holds at least
    ``min_samples`` samples, so no shard is empty.
    """
    if num_participants < 1:
        raise ValueError(f"num_participants must be >= 1, got {num_participants}")
    if alpha <= 0:
        raise ValueError(f"Dirichlet alpha must be positive, got {alpha}")
    rng = rng or np.random.default_rng()

    for _ in range(100):
        shards: List[List[int]] = [[] for _ in range(num_participants)]
        for cls in range(dataset.num_classes):
            class_indices = np.flatnonzero(dataset.labels == cls)
            rng.shuffle(class_indices)
            proportions = rng.dirichlet(np.full(num_participants, alpha))
            # Convert proportions to split points over this class's samples.
            cuts = (np.cumsum(proportions) * len(class_indices)).astype(int)[:-1]
            for shard, piece in zip(shards, np.split(class_indices, cuts)):
                shard.extend(piece.tolist())
        if all(len(s) >= min_samples for s in shards):
            return [dataset.subset(np.array(sorted(s))) for s in shards]
    raise RuntimeError(
        f"could not produce {num_participants} non-empty shards after 100 draws; "
        f"dataset too small ({len(dataset)} samples) for alpha={alpha}"
    )


def iid_partition(
    dataset: ArrayDataset, num_participants: int, rng: np.random.Generator = None
) -> List[ArrayDataset]:
    """Shuffle and split into near-equal i.i.d. shards."""
    if num_participants < 1:
        raise ValueError(f"num_participants must be >= 1, got {num_participants}")
    rng = rng or np.random.default_rng()
    perm = rng.permutation(len(dataset))
    return [dataset.subset(piece) for piece in np.array_split(perm, num_participants)]


def equal_partition(
    dataset: ArrayDataset, num_participants: int, rng: np.random.Generator = None
) -> List[ArrayDataset]:
    """Class-stratified equal split (the Sec. VI-D "equally divide" setting).

    Every participant receives the same number of samples of every class
    (up to remainder truncation), so shards are exchangeable.
    """
    if num_participants < 1:
        raise ValueError(f"num_participants must be >= 1, got {num_participants}")
    rng = rng or np.random.default_rng()
    shards: List[List[int]] = [[] for _ in range(num_participants)]
    for cls in range(dataset.num_classes):
        class_indices = np.flatnonzero(dataset.labels == cls)
        rng.shuffle(class_indices)
        per = len(class_indices) // num_participants
        for k in range(num_participants):
            shards[k].extend(class_indices[k * per : (k + 1) * per].tolist())
    return [dataset.subset(np.array(sorted(s))) for s in shards]


def label_distribution(shards: List[ArrayDataset]) -> np.ndarray:
    """Matrix of per-shard class proportions, shape (K, num_classes)."""
    rows = []
    for shard in shards:
        counts = shard.class_counts().astype(float)
        rows.append(counts / max(counts.sum(), 1.0))
    return np.array(rows)


def skewness(shards: List[ArrayDataset]) -> float:
    """Mean total-variation distance between shard label distributions and
    the global label distribution.  0 for perfectly i.i.d. shards."""
    dist = label_distribution(shards)
    sizes = np.array([len(s) for s in shards], dtype=float)
    overall = (dist * sizes[:, None]).sum(axis=0) / sizes.sum()
    return float(np.mean(np.abs(dist - overall).sum(axis=1) / 2.0))
