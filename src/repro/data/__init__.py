"""``repro.data`` — synthetic datasets, federated partitioning, augmentation."""

from .loader import DataLoader
from .partition import (
    SHARD_SCHEMES,
    ShardDescriptor,
    derive_shard,
    derive_shard_indices,
    dirichlet_partition,
    equal_partition,
    iid_partition,
    label_distribution,
    skewness,
)
from .synthetic import (
    ArrayDataset,
    SyntheticImageSpec,
    generate_dataset,
    synth_cifar10,
    synth_cifar100,
    synth_svhn,
)
from .transforms import (
    Compose,
    Cutout,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    standard_augmentation,
)

__all__ = [
    "DataLoader",
    "ArrayDataset",
    "SyntheticImageSpec",
    "generate_dataset",
    "synth_cifar10",
    "synth_svhn",
    "synth_cifar100",
    "dirichlet_partition",
    "iid_partition",
    "equal_partition",
    "label_distribution",
    "skewness",
    "SHARD_SCHEMES",
    "ShardDescriptor",
    "derive_shard",
    "derive_shard_indices",
    "Compose",
    "RandomCrop",
    "RandomHorizontalFlip",
    "Cutout",
    "Normalize",
    "standard_augmentation",
]
