"""One-call method comparison: ours vs the baselines on a shared setup.

Productises the Table III/IV workflow: given one
:class:`~repro.core.ExperimentConfig`, runs the requested search methods
on identical shards, retrains every searched architecture with the same
recipe, and returns a comparison table (plus Markdown rendering).

Example
-------
>>> from repro import ExperimentConfig
>>> from repro.compare import compare_methods, comparison_markdown
>>> config = ExperimentConfig.small(non_iid=True, seed=0)
>>> rows = compare_methods(config, methods=("ours", "fedavg", "fednas"))
>>> print(comparison_markdown(rows))
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

import numpy as np

from .baselines import (
    EvoFedNasConfig,
    EvoFedNasSearcher,
    FedNasConfig,
    FedNasSearcher,
    resnet_stand_in,
)
from .core import ExperimentConfig
from .core.phases import evaluate, retrain_federated
from .core.pipeline import FederatedModelSearch
from .data import standard_augmentation
from .federated import FedAvgConfig, FedAvgTrainer
from .reporting import markdown_table

__all__ = ["MethodResult", "compare_methods", "comparison_markdown", "SUPPORTED_METHODS"]

SUPPORTED_METHODS = ("ours", "fedavg", "fednas", "evofednas")


@dataclasses.dataclass(frozen=True)
class MethodResult:
    """One comparison row (mirrors the paper's table columns)."""

    method: str
    error_percent: float
    parameters: int
    strategy: str
    is_federated: bool
    is_nas: bool


def _retrain_error(genotype, pipeline: FederatedModelSearch):
    """Federated P3 retrain + P4 eval; returns (accuracy, num_parameters)."""
    model, _ = retrain_federated(
        genotype,
        pipeline.config,
        pipeline.shards,
        pipeline.test_set,
        rng=np.random.default_rng(pipeline.config.seed + 1),
    )
    accuracy = evaluate(model, pipeline.test_set)
    return accuracy, model.num_parameters()


def compare_methods(
    config: ExperimentConfig,
    methods: Sequence[str] = SUPPORTED_METHODS,
) -> List[MethodResult]:
    """Run each method on the same data/partition and compare test error.

    All searched architectures are retrained federatedly (P3, FL recipe)
    on the same shards; ``fedavg`` trains the fixed deep-residual
    stand-in directly.
    """
    unknown = [m for m in methods if m not in SUPPORTED_METHODS]
    if unknown:
        raise ValueError(f"unknown methods {unknown}; choose from {SUPPORTED_METHODS}")

    pipeline = FederatedModelSearch(config)
    results: List[MethodResult] = []

    for method in methods:
        if method == "ours":
            pipeline.warm_up()
            pipeline.search()
            accuracy, params = _retrain_error(pipeline.derive(), pipeline)
            results.append(
                MethodResult("Ours", 100 * (1 - accuracy), params, "RL", True, True)
            )
        elif method == "fedavg":
            model = resnet_stand_in(
                num_classes=config.num_classes,
                rng=np.random.default_rng(config.seed + 2),
            )
            trainer = FedAvgTrainer(
                model,
                pipeline.shards,
                FedAvgConfig(
                    lr=config.fl_lr,
                    momentum=config.fl_momentum,
                    weight_decay=config.fl_weight_decay,
                    batch_size=config.batch_size,
                ),
                transform=standard_augmentation(config.image_size),
                rng=np.random.default_rng(config.seed + 3),
            )
            trainer.run(config.fl_retrain_rounds)
            accuracy = evaluate(model, pipeline.test_set)
            results.append(
                MethodResult(
                    "FedAvg (fixed)", 100 * (1 - accuracy),
                    model.num_parameters(), "hand", True, False,
                )
            )
        elif method == "fednas":
            searcher = FedNasSearcher(
                config.supernet_config(),
                pipeline.shards,
                FedNasConfig(batch_size=config.batch_size),
                rng=np.random.default_rng(config.seed + 4),
            )
            outcome = searcher.search(config.search_rounds)
            accuracy, params = _retrain_error(outcome.genotype, pipeline)
            results.append(
                MethodResult("FedNAS", 100 * (1 - accuracy), params, "grad", True, True)
            )
        elif method == "evofednas":
            searcher = EvoFedNasSearcher(
                config.supernet_config(),
                pipeline.shards,
                EvoFedNasConfig(batch_size=config.batch_size),
                rng=np.random.default_rng(config.seed + 5),
            )
            searcher.search(max(2, config.search_rounds // 8))
            model = searcher.best_model()
            accuracy = evaluate(model, pipeline.test_set)
            results.append(
                MethodResult(
                    "EvoFedNAS", 100 * (1 - accuracy),
                    model.num_parameters(), "evol", True, True,
                )
            )
    return results


def comparison_markdown(results: Sequence[MethodResult]) -> str:
    """Render comparison rows in the paper's table layout."""
    headers = ["Method", "Error(%)", "Params", "Strategy", "FL", "NAS"]
    rows = [
        [
            r.method,
            r.error_percent,
            r.parameters,
            r.strategy,
            "yes" if r.is_federated else "",
            "yes" if r.is_nas else "",
        ]
        for r in results
    ]
    return markdown_table(headers, rows, precision=2)
