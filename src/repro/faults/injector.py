"""The deterministic fault injector the server consults each round.

:class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into concrete damage at three hook points inside
:class:`~repro.federated.server.FederatedSearchServer`:

* :meth:`maybe_crash` — start of every round; raises
  :class:`~repro.faults.plan.InjectedServerCrash` when a
  ``crash_server`` spec is due.
* :meth:`force_offline` — during online sampling; flaps participant
  availability.
* :meth:`transform_update` — as each participant reply is collected;
  corrupts, drops, or duplicates it *before* it enters the server's
  pending queue, exactly where a hostile or broken device would.

Determinism: the injector owns a private seeded RNG consumed in the
server's (deterministic) iteration order, so a seeded run with a plan is
bit-identical across repeats and execution backends.  The RNG state and
the set of already-fired crash specs are exposed via
:meth:`state_dict` / :meth:`load_state_dict` so checkpointed runs resume
without replaying or skipping faults.

Every injected fault is emitted as a ``fault.injected`` telemetry event
(fields: ``kind``, ``round``, ``participant``) and counted under
``faults.injected`` plus ``faults.<kind>``.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional

import numpy as np

from repro.telemetry import Telemetry

from .plan import FaultPlan, FaultSpec, InjectedServerCrash

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies a :class:`FaultPlan` deterministically; see module docs."""

    def __init__(self, plan: FaultPlan, telemetry: Optional[Telemetry] = None):
        self.plan = plan
        self.telemetry = telemetry or Telemetry.disabled()
        self.rng = np.random.default_rng(plan.seed)
        #: indices (into ``plan.faults``) of one-shot specs already fired
        self._fired: set = set()

    # ------------------------------------------------------------------
    # Hook points (called by the server)
    # ------------------------------------------------------------------
    def maybe_crash(self, round_t: int) -> None:
        """Raise :class:`InjectedServerCrash` if a crash spec is due.

        Called at the very start of a round, before any round state or
        RNG draw, so the latest checkpoint resumes bit-identically.
        """
        for index, spec in enumerate(self.plan.faults):
            if spec.kind != "crash_server" or index in self._fired:
                continue
            if round_t == spec.round_start:
                self._fired.add(index)
                self._emit(spec, round_t, None)
                raise InjectedServerCrash(
                    f"fault plan forced a server crash at round {round_t}"
                )

    def force_offline(self, round_t: int, participant: int) -> bool:
        """Should ``participant`` be unreachable this round?"""
        for spec in self.plan.faults:
            if spec.kind != "offline":
                continue
            if spec.active(round_t, participant) and self._roll(spec):
                self._emit(spec, round_t, participant)
                return True
        return False

    def transform_update(self, round_t: int, participant: int, update) -> List:
        """Damage one collected reply; returns the update(s) that survive.

        ``[]`` means the reply was dropped in transit; two entries mean
        it was duplicated.  Corruptions apply to deep copies, so pool
        snapshots and the participant's own state never alias damaged
        arrays.  Specs compose in plan order (e.g. corrupt + duplicate
        yields two corrupted copies).
        """
        out = [update]
        for spec in self.plan.faults:
            if spec.kind in ("crash_server", "offline"):
                continue
            if not spec.active(round_t, participant) or not self._roll(spec):
                continue
            self._emit(spec, round_t, participant)
            if spec.kind == "drop_update":
                return []
            if spec.kind == "duplicate_update":
                out.append(copy.deepcopy(out[0]))
            else:
                out = [self._corrupt(spec, u) for u in out]
        return out

    # ------------------------------------------------------------------
    # Resume support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        return {
            "rng_state": self.rng.bit_generator.state,
            "fired": sorted(self._fired),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.rng.bit_generator.state = state["rng_state"]
        self._fired = set(int(i) for i in state["fired"])

    def mark_resumed(self, round_t: int) -> None:
        """Suppress crash specs at or before ``round_t`` after a resume.

        A crash at round ``K`` leaves a checkpoint from round ``K−1``
        whose injector state predates the crash; without this, resuming
        at round ``K`` would immediately crash again.
        """
        for index, spec in enumerate(self.plan.faults):
            if spec.kind == "crash_server" and spec.round_start <= round_t:
                self._fired.add(index)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _roll(self, spec: FaultSpec) -> bool:
        if spec.probability >= 1.0:
            return True
        return bool(self.rng.random() < spec.probability)

    def _emit(self, spec: FaultSpec, round_t: int, participant: Optional[int]) -> None:
        telemetry = self.telemetry
        if not telemetry.enabled:
            return
        telemetry.count("faults.injected")
        telemetry.count(f"faults.{spec.kind}")
        telemetry.emit(
            "fault.injected", kind=spec.kind, round=round_t, participant=participant
        )

    @staticmethod
    def _corrupt(spec: FaultSpec, update):
        damaged = copy.deepcopy(update)
        gradients = damaged.gradients
        if spec.kind in ("corrupt_nan", "corrupt_inf"):
            poison = np.nan if spec.kind == "corrupt_nan" else np.inf
            for grad in gradients.values():
                if grad.size:
                    grad.reshape(-1)[0] = poison
        elif spec.kind == "corrupt_shape":
            for name in sorted(gradients):
                grad = gradients[name]
                if grad.ndim >= 1 and grad.size > 1:
                    gradients[name] = grad.reshape(-1)[:-1].copy()
                    break
        elif spec.kind == "corrupt_norm":
            for name, grad in gradients.items():
                gradients[name] = grad * spec.scale
        return damaged
