"""Network-level chaos: seeded wire fault plans and ``ChaosConnection``.

Where :mod:`repro.faults.plan` breaks the *model* layer (corrupt
gradients, dropped updates, offline flaps), this module breaks the
*wire*: a :class:`NetworkFaultPlan` schedules latency, mid-frame
connection drops, connect refusals, blackhole partitions, slow-drip
throttling, and frame corruption against the transport's framed TCP
protocol.  Plans are plain JSON, shareable between a chaos run, its bug
report, and the regression test that reproduces it::

    {
      "seed": 7,
      "faults": [
        {"kind": "latency", "probability": 0.5, "latency_s": 0.05},
        {"kind": "drop", "probability": 0.02},
        {"kind": "blackhole", "probability": 0.01, "duration_s": 2.0}
      ]
    }

Injection happens inside :class:`ChaosConnection`, a wrapper around
:class:`repro.transport.protocol.FrameConnection` that the
``SocketBackend`` (and ``repro serve --network-faults``) interpose on
every connection.  Each connection gets its own RNG stream derived
deterministically from the plan seed and a stable connection key, so a
given plan replays the same decision sequence per connection regardless
of how other connections interleave.  The streams are private — model
and search RNG are never touched, so an *empty* plan is bit-identical
to no plan at all.

Fault kinds
-----------

``latency``
    Sleep ``latency_s + U(0, jitter_s)`` before a send or receive (a
    congested or distant peer).
``drop``
    Write part of a frame, then hard-close the socket — the peer sees a
    mid-frame EOF (``ProtocolError``), this side sees ``OSError``.
``refuse``
    Reject the TCP connect itself: the backend's dial raises
    ``ConnectionRefusedError``; a worker daemon closes straight after
    ``accept``.
``blackhole``
    Open a partition window of ``duration_s``: sends are silently
    swallowed and receives stall until the window closes or the caller's
    deadline fires (both directions, like a dropped route).
``throttle``
    Deliver the frame at ``bytes_per_s`` in small chunks (slow-drip
    sender testing the receiver's whole-frame deadline).
``corrupt``
    Flip one random bit of the encoded frame; the peer's CRC/header
    check raises ``ProtocolError``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import socket
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

__all__ = [
    "NETWORK_FAULT_KINDS",
    "NetworkFaultSpec",
    "NetworkFaultPlan",
    "ChaosEngine",
    "ChaosConnection",
]

#: Every network fault kind a plan may request (see the module docstring).
NETWORK_FAULT_KINDS = (
    "latency",
    "drop",
    "refuse",
    "blackhole",
    "throttle",
    "corrupt",
)

#: Which kinds roll on which wire operation.
_SEND_KINDS = ("latency", "drop", "blackhole", "throttle", "corrupt")
_RECV_KINDS = ("latency", "drop", "blackhole")


@dataclasses.dataclass(frozen=True)
class NetworkFaultSpec:
    """One wire fault: kind + trigger chance + kind-specific knobs."""

    kind: str
    #: chance the fault triggers per opportunity (per send/recv/connect,
    #: drawn from the connection's seeded chaos RNG)
    probability: float = 1.0
    #: added one-way delay for ``latency``
    latency_s: float = 0.05
    #: extra uniform jitter on top of ``latency_s``
    jitter_s: float = 0.0
    #: partition window length for ``blackhole``
    duration_s: float = 1.0
    #: delivery rate for ``throttle``
    bytes_per_s: float = 65536.0
    #: only fault peers whose ``host:port`` contains this substring;
    #: ``None`` faults every peer
    peer: Optional[str] = None
    #: stop firing after this many injections (``None`` = unlimited)
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in NETWORK_FAULT_KINDS:
            raise ValueError(
                f"unknown network fault kind {self.kind!r}; "
                f"choose from {NETWORK_FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {self.latency_s}")
        if self.jitter_s < 0:
            raise ValueError(f"jitter_s must be >= 0, got {self.jitter_s}")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got {self.duration_s}")
        if self.bytes_per_s <= 0:
            raise ValueError(f"bytes_per_s must be > 0, got {self.bytes_per_s}")
        if self.max_events is not None and self.max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {self.max_events}")

    def matches(self, peer: str) -> bool:
        """Does this spec apply to connections with ``peer``?"""
        return self.peer is None or self.peer in peer

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"kind": self.kind}
        if self.probability != 1.0:
            data["probability"] = self.probability
        if self.kind == "latency":
            data["latency_s"] = self.latency_s
            if self.jitter_s:
                data["jitter_s"] = self.jitter_s
        if self.kind == "blackhole":
            data["duration_s"] = self.duration_s
        if self.kind == "throttle":
            data["bytes_per_s"] = self.bytes_per_s
        if self.peer is not None:
            data["peer"] = self.peer
        if self.max_events is not None:
            data["max_events"] = self.max_events
        return data

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "NetworkFaultSpec":
        if not isinstance(data, dict):
            raise ValueError(
                f"network fault spec must be an object, got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(NetworkFaultSpec)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown network fault spec key(s): {', '.join(unknown)}; "
                f"valid keys: {', '.join(sorted(known))}"
            )
        if "kind" not in data:
            raise ValueError("network fault spec requires a 'kind'")
        return NetworkFaultSpec(**data)  # type: ignore[arg-type]


@dataclasses.dataclass(frozen=True)
class NetworkFaultPlan:
    """A seed plus an ordered list of wire faults.

    The seed derives every connection's private chaos RNG stream, so the
    same plan replays the same per-connection decisions.  An empty plan
    (``faults=()``) is inert: connections behave exactly as if no plan
    were loaded.
    """

    seed: int = 0
    faults: Tuple[NetworkFaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def to_dict(self) -> Dict[str, object]:
        return {"seed": self.seed, "faults": [f.to_dict() for f in self.faults]}

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "NetworkFaultPlan":
        if not isinstance(data, dict):
            raise ValueError(
                f"network fault plan must be an object, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - {"seed", "faults"})
        if unknown:
            raise ValueError(
                f"unknown network fault plan key(s): {', '.join(unknown)}; "
                "valid keys: faults, seed"
            )
        seed = data.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ValueError(f"network fault plan seed must be an int, got {seed!r}")
        raw_faults = data.get("faults", [])
        if not isinstance(raw_faults, list):
            raise ValueError("network fault plan 'faults' must be a list")
        faults = tuple(NetworkFaultSpec.from_dict(spec) for spec in raw_faults)
        return NetworkFaultPlan(seed=seed, faults=faults)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @staticmethod
    def from_json(text: str) -> "NetworkFaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid network fault plan JSON: {exc}") from exc
        return NetworkFaultPlan.from_dict(data)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @staticmethod
    def load(path: Union[str, Path]) -> "NetworkFaultPlan":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ValueError(f"cannot read network fault plan: {exc}") from exc
        return NetworkFaultPlan.from_json(text)


def _stream_seed(plan_seed: int, key: str) -> Tuple[int, int]:
    """A stable 64-bit RNG seed for one connection key."""
    digest = hashlib.blake2s(key.encode("utf-8")).digest()
    return (plan_seed & 0xFFFFFFFF, int.from_bytes(digest[:8], "big"))


class ChaosEngine:
    """Applies one :class:`NetworkFaultPlan` to many connections.

    One engine lives per transport side (the backend, or one worker
    daemon).  It hands each new connection a private RNG stream keyed on
    ``(plan seed, peer address, per-peer connection ordinal)`` — so a
    reconnect to the same peer gets a fresh but still deterministic
    stream — and funnels every injected fault into telemetry as a
    ``fault.network`` event plus ``faults.network[.<kind>]`` counters.
    """

    def __init__(self, plan: NetworkFaultPlan, telemetry=None, side: str = "server"):
        self.plan = plan
        self.side = side
        self._telemetry = telemetry
        self._lock = threading.Lock()
        self._dials: Dict[str, int] = {}
        self._fired: Dict[int, int] = {}
        #: RNG for connect-time ``refuse`` rolls (one stream per engine;
        #: dials happen sequentially on the registration path)
        self._connect_rng = np.random.default_rng(
            _stream_seed(plan.seed, f"{side}:connect")
        )

    @property
    def active(self) -> bool:
        return bool(self.plan.faults)

    # ------------------------------------------------------------------
    def specs_for(self, peer: str) -> List[Tuple[int, NetworkFaultSpec]]:
        """The ``(index, spec)`` pairs that may fire against ``peer``."""
        return [
            (index, spec)
            for index, spec in enumerate(self.plan.faults)
            if spec.matches(peer)
        ]

    def may_fire(self, index: int) -> bool:
        """Is spec ``index`` still under its ``max_events`` budget?"""
        spec = self.plan.faults[index]
        if spec.max_events is None:
            return True
        with self._lock:
            return self._fired.get(index, 0) < spec.max_events

    def record(self, index: int, peer: str, **detail) -> None:
        """Count one injected fault and emit its telemetry event."""
        spec = self.plan.faults[index]
        with self._lock:
            self._fired[index] = self._fired.get(index, 0) + 1
        if self._telemetry is not None:
            self._telemetry.count("faults.network")
            self._telemetry.count(f"faults.network.{spec.kind}")
            self._telemetry.emit(
                "fault.network", kind=spec.kind, peer=peer, side=self.side, **detail
            )

    def fired_counts(self) -> Dict[str, int]:
        """Total injections so far, keyed by fault kind."""
        totals: Dict[str, int] = {}
        with self._lock:
            for index, count in self._fired.items():
                kind = self.plan.faults[index].kind
                totals[kind] = totals.get(kind, 0) + count
        return totals

    # ------------------------------------------------------------------
    def refuse_connect(self, peer: str) -> bool:
        """Roll connect-refusal faults for a dial/accept of ``peer``."""
        if not self.active:
            return False
        for index, spec in self.specs_for(peer):
            if spec.kind != "refuse":
                continue
            roll = float(self._connect_rng.random())
            if roll < spec.probability and self.may_fire(index):
                self.record(index, peer)
                return True
        return False

    def wrap(self, conn, peer: str) -> "ChaosConnection":
        """Wrap a freshly established ``FrameConnection`` for ``peer``."""
        with self._lock:
            ordinal = self._dials.get(peer, 0)
            self._dials[peer] = ordinal + 1
        return ChaosConnection(conn, self, peer, f"{peer}#{ordinal}")


class ChaosConnection:
    """A ``FrameConnection`` with a saboteur between caller and socket.

    Exposes the same surface the transport uses (``send_frame`` /
    ``recv_frame`` / ``request`` / ``close`` / byte counters) and
    delegates to the wrapped connection — after rolling the plan's specs
    against this connection's private RNG stream.  One roll is drawn per
    matching spec per operation whether or not it fires, so the decision
    sequence is a pure function of (plan seed, connection key, operation
    ordinal) and never of wall-clock timing.
    """

    def __init__(self, inner, engine: ChaosEngine, peer: str, key: str):
        self._inner = inner
        self._engine = engine
        self.peer = peer
        self._rng = np.random.default_rng(_stream_seed(engine.plan.seed, key))
        self._specs = engine.specs_for(peer)
        self._blackhole_until = 0.0

    # -- byte accounting passthrough -----------------------------------
    @property
    def bytes_sent(self) -> int:
        return self._inner.bytes_sent

    @property
    def bytes_received(self) -> int:
        return self._inner.bytes_received

    # ------------------------------------------------------------------
    def _roll(self, kinds: Tuple[str, ...]) -> List[Tuple[int, NetworkFaultSpec]]:
        """Roll every matching spec for one operation; return the firing ones."""
        fired = []
        for index, spec in self._specs:
            if spec.kind not in kinds:
                continue
            roll = float(self._rng.random())
            if roll < spec.probability and self._engine.may_fire(index):
                fired.append((index, spec))
        return fired

    def _blackhole_active(self) -> bool:
        return time.monotonic() < self._blackhole_until

    def send_frame(
        self, msg_type: int, payload: bytes = b"", timeout: Optional[float] = None
    ) -> int:
        # Imported lazily: repro.transport itself imports repro.faults.
        from ..transport.protocol import encode_frame

        frame = encode_frame(msg_type, payload)
        if not self._specs:
            return self._inner.send_bytes(frame, timeout=timeout)
        for index, spec in self._roll(_SEND_KINDS):
            if spec.kind == "latency":
                delay = spec.latency_s + spec.jitter_s * float(self._rng.random())
                self._engine.record(index, self.peer, op="send", delay_s=delay)
                time.sleep(delay)
            elif spec.kind == "blackhole":
                if not self._blackhole_active():
                    self._blackhole_until = time.monotonic() + spec.duration_s
                    self._engine.record(
                        index, self.peer, op="send", duration_s=spec.duration_s
                    )
            elif spec.kind == "corrupt":
                bit = int(self._rng.integers(0, len(frame) * 8))
                mutated = bytearray(frame)
                mutated[bit // 8] ^= 1 << (bit % 8)
                frame = bytes(mutated)
                self._engine.record(index, self.peer, op="send", bit=bit)
            elif spec.kind == "throttle":
                self._engine.record(
                    index, self.peer, op="send", bytes_per_s=spec.bytes_per_s
                )
                return self._send_throttled(frame, spec.bytes_per_s, timeout)
            elif spec.kind == "drop":
                cut = int(self._rng.integers(1, max(2, len(frame))))
                self._engine.record(index, self.peer, op="send", sent_bytes=cut)
                try:
                    self._inner.send_bytes(frame[:cut], timeout=timeout)
                finally:
                    self._inner.close()
                raise OSError("chaos: connection dropped mid-frame")
        if self._blackhole_active():
            # Swallow the whole frame: the peer never sees it, and the
            # caller's reply deadline is what surfaces the partition.
            return len(frame)
        return self._inner.send_bytes(frame, timeout=timeout)

    def _send_throttled(
        self, frame: bytes, bytes_per_s: float, timeout: Optional[float]
    ) -> int:
        chunk = max(256, int(bytes_per_s * 0.02))
        sent = 0
        for start in range(0, len(frame), chunk):
            piece = frame[start : start + chunk]
            sent += self._inner.send_bytes(piece, timeout=timeout)
            if start + chunk < len(frame):
                time.sleep(len(piece) / bytes_per_s)
        return sent

    def recv_frame(self, timeout: Optional[float] = None):
        if not self._specs:
            return self._inner.recv_frame(timeout=timeout)
        deadline = None if timeout is None else time.monotonic() + timeout
        for index, spec in self._roll(_RECV_KINDS):
            if spec.kind == "latency":
                delay = spec.latency_s + spec.jitter_s * float(self._rng.random())
                if timeout is not None:
                    delay = min(delay, timeout)
                self._engine.record(index, self.peer, op="recv", delay_s=delay)
                time.sleep(delay)
            elif spec.kind == "blackhole":
                if not self._blackhole_active():
                    self._blackhole_until = time.monotonic() + spec.duration_s
                    self._engine.record(
                        index, self.peer, op="recv", duration_s=spec.duration_s
                    )
            elif spec.kind == "drop":
                self._engine.record(index, self.peer, op="recv", sent_bytes=0)
                self._inner.close()
                raise OSError("chaos: connection dropped before read")
        if self._blackhole_active():
            # Stall like a dead route: wake at window end or deadline,
            # whichever comes first.
            wake = self._blackhole_until
            if deadline is not None and deadline <= wake:
                time.sleep(max(0.0, deadline - time.monotonic()))
                raise socket.timeout("chaos: blackhole window swallowed the read")
            time.sleep(max(0.0, wake - time.monotonic()))
        remaining = (
            None if deadline is None else max(0.0, deadline - time.monotonic())
        )
        return self._inner.recv_frame(timeout=remaining)

    def request(
        self, msg_type: int, payload: bytes = b"", timeout: Optional[float] = None
    ):
        deadline = None if timeout is None else time.monotonic() + timeout
        self.send_frame(msg_type, payload, timeout=timeout)
        remaining = (
            None if deadline is None else max(0.0, deadline - time.monotonic())
        )
        return self.recv_frame(timeout=remaining)

    def close(self) -> None:
        self._inner.close()
