"""``repro.faults`` — deterministic fault injection for the search runtime.

The package answers one question: *does the search survive hostile
reality?*  A :class:`FaultPlan` (plain JSON) schedules corrupted
gradients, dropped or duplicated replies, availability flaps, and forced
server crashes; a :class:`FaultInjector` applies it deterministically
from a private seeded RNG, so every chaos run is exactly repeatable —
and resumable, because the injector's state travels inside search
checkpoints.

Wire a plan in via ``ExperimentConfig(fault_plan_path="plan.json")`` or
``repro run --faults plan.json``; see ``examples/fault_tour.py``.
"""

from .injector import FaultInjector
from .plan import FAULT_KINDS, FaultPlan, FaultSpec, InjectedServerCrash

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "InjectedServerCrash",
]
