"""``repro.faults`` — deterministic fault injection for the search runtime.

The package answers one question: *does the search survive hostile
reality?*  A :class:`FaultPlan` (plain JSON) schedules corrupted
gradients, dropped or duplicated replies, availability flaps, and forced
server crashes; a :class:`FaultInjector` applies it deterministically
from a private seeded RNG, so every chaos run is exactly repeatable —
and resumable, because the injector's state travels inside search
checkpoints.

Wire a plan in via ``ExperimentConfig(fault_plan_path="plan.json")`` or
``repro run --faults plan.json``; see ``examples/fault_tour.py``.

The *wire* layer has its own chaos story in :mod:`repro.faults.network`:
seeded :class:`NetworkFaultPlan` specs (latency, mid-frame drops,
connect refusals, blackhole partitions, throttling, frame corruption)
applied through :class:`ChaosConnection` on both sides of the socket
transport — ``ExperimentConfig(network_faults="plan.json")`` /
``$REPRO_NETWORK_FAULTS`` / ``repro run --network-faults plan.json``;
see ``examples/chaos_tour.py``.
"""

from .injector import FaultInjector
from .network import (
    NETWORK_FAULT_KINDS,
    ChaosConnection,
    ChaosEngine,
    NetworkFaultPlan,
    NetworkFaultSpec,
)
from .plan import FAULT_KINDS, FaultPlan, FaultSpec, InjectedServerCrash

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "InjectedServerCrash",
    "NETWORK_FAULT_KINDS",
    "NetworkFaultPlan",
    "NetworkFaultSpec",
    "ChaosEngine",
    "ChaosConnection",
]
