"""Declarative fault plans: what to break, when, and how often.

A :class:`FaultPlan` is a seed plus an ordered list of
:class:`FaultSpec` entries.  Each spec names one fault *kind*, the
rounds it is active in (half-open ``[round_start, round_end)``), an
optional target participant, and a trigger probability.  Plans are plain
JSON — shareable between a failing run, its bug report, and the
regression test that reproduces it::

    {
      "seed": 7,
      "faults": [
        {"kind": "corrupt_nan", "participant": 1, "round_start": 2},
        {"kind": "drop_update", "probability": 0.2},
        {"kind": "crash_server", "round_start": 5}
      ]
    }

Fault kinds
-----------

``corrupt_nan`` / ``corrupt_inf``
    Poison every gradient array of the participant's update with a
    non-finite entry (what a device-side numeric blow-up looks like on
    the wire).
``corrupt_shape``
    Flatten one gradient array so its shape no longer matches the
    parameter it claims to be for (a malformed or mismatched payload).
``corrupt_norm``
    Multiply every gradient by ``scale`` (default ``1e6``) — an exploded
    but still-finite update that only a norm check can catch.
``drop_update``
    The reply is lost in transit: it never reaches the server.
``duplicate_update``
    The reply arrives twice (a retransmission bug).
``offline``
    The participant is unreachable for the round (availability flap),
    feeding the existing soft-synchronisation path.
``crash_server``
    Kill the server process at the *start* of round ``round_start`` by
    raising :class:`InjectedServerCrash` — before any round-``K`` state
    or RNG is touched, so a checkpoint from round ``K−1`` resumes
    bit-identically.  Fires at most once; ``probability`` is ignored.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan", "InjectedServerCrash"]

#: Every fault kind a plan may request (see the module docstring).
FAULT_KINDS = (
    "corrupt_nan",
    "corrupt_inf",
    "corrupt_shape",
    "corrupt_norm",
    "drop_update",
    "duplicate_update",
    "offline",
    "crash_server",
)


class InjectedServerCrash(RuntimeError):
    """Raised by the injector to simulate the server process dying.

    Deliberately *not* caught by the server or pipeline round loops —
    it propagates like a real crash would, and only the checkpoint on
    disk survives.  The CLI maps it to exit code 3.
    """


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One fault: kind + activation window + target + trigger chance."""

    kind: str
    #: target participant id; ``None`` targets every participant
    participant: Optional[int] = None
    #: first round the fault is active in (for ``crash_server``: the
    #: exact round the crash fires at)
    round_start: int = 0
    #: first round the fault is *no longer* active in; ``None`` = forever
    round_end: Optional[int] = None
    #: chance the fault triggers per opportunity (drawn from the plan's
    #: seeded injector RNG, so runs repeat exactly)
    probability: float = 1.0
    #: gradient multiplier for ``corrupt_norm``
    scale: float = 1e6

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.participant is not None and self.participant < 0:
            raise ValueError(
                f"participant must be >= 0 or null, got {self.participant}"
            )
        if self.round_start < 0:
            raise ValueError(f"round_start must be >= 0, got {self.round_start}")
        if self.round_end is not None and self.round_end <= self.round_start:
            raise ValueError(
                f"round_end ({self.round_end}) must be > round_start "
                f"({self.round_start})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    def active(self, round_t: int, participant: Optional[int] = None) -> bool:
        """Is this spec live at ``round_t`` for ``participant``?"""
        if round_t < self.round_start:
            return False
        if self.round_end is not None and round_t >= self.round_end:
            return False
        if (
            self.participant is not None
            and participant is not None
            and self.participant != participant
        ):
            return False
        return True

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"kind": self.kind}
        if self.participant is not None:
            data["participant"] = self.participant
        if self.round_start:
            data["round_start"] = self.round_start
        if self.round_end is not None:
            data["round_end"] = self.round_end
        if self.probability != 1.0:
            data["probability"] = self.probability
        if self.kind == "corrupt_norm":
            data["scale"] = self.scale
        return data

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "FaultSpec":
        if not isinstance(data, dict):
            raise ValueError(f"fault spec must be an object, got {type(data).__name__}")
        known = {f.name for f in dataclasses.fields(FaultSpec)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown fault spec key(s): {', '.join(unknown)}; "
                f"valid keys: {', '.join(sorted(known))}"
            )
        if "kind" not in data:
            raise ValueError("fault spec requires a 'kind'")
        return FaultSpec(**data)  # type: ignore[arg-type]


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered list of faults — the whole chaos schedule.

    The seed drives the injector's private RNG (probability rolls), so
    the same plan against the same experiment seed reproduces the same
    faults, round for round.
    """

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def to_dict(self) -> Dict[str, object]:
        return {"seed": self.seed, "faults": [f.to_dict() for f in self.faults]}

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ValueError(f"fault plan must be an object, got {type(data).__name__}")
        unknown = sorted(set(data) - {"seed", "faults"})
        if unknown:
            raise ValueError(
                f"unknown fault plan key(s): {', '.join(unknown)}; "
                "valid keys: faults, seed"
            )
        seed = data.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ValueError(f"fault plan seed must be an int, got {seed!r}")
        raw_faults = data.get("faults", [])
        if not isinstance(raw_faults, list):
            raise ValueError("fault plan 'faults' must be a list")
        faults = tuple(FaultSpec.from_dict(spec) for spec in raw_faults)
        return FaultPlan(seed=seed, faults=faults)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid fault plan JSON: {exc}") from exc
        return FaultPlan.from_dict(data)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @staticmethod
    def load(path: Union[str, Path]) -> "FaultPlan":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ValueError(f"cannot read fault plan: {exc}") from exc
        return FaultPlan.from_json(text)

    def crash_rounds(self) -> List[int]:
        """Rounds at which ``crash_server`` specs fire."""
        return [f.round_start for f in self.faults if f.kind == "crash_server"]
