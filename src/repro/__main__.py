"""Command-line entry point: ``python -m repro``.

Runs the four-phase federated model-search pipeline from the shell:

    python -m repro --dataset cifar10 --non-iid --participants 4 \
        --search-rounds 60 --retrain federated --seed 0

Prints the searched genotype, payload statistics, and the final test
accuracy.  ``--profile paper`` switches to the full Table I scale (for
real hardware); the default ``small`` profile finishes in well under a
minute on a laptop CPU.

``--telemetry-log run.jsonl`` streams structured telemetry events to a
JSONL run log; ``python -m repro trace run.jsonl`` then summarizes it
(per-phase time breakdown, staleness histogram, slowest participants,
per-round table).
"""

from __future__ import annotations

import argparse
import sys

from .core import ExperimentConfig, FederatedModelSearch


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Federated model search via reinforcement learning (ICDCS 2021 reproduction)",
    )
    parser.add_argument(
        "--profile", choices=("small", "paper"), default="small",
        help="experiment scale (default: small)",
    )
    parser.add_argument(
        "--dataset", choices=("cifar10", "svhn", "cifar100"), default="cifar10"
    )
    parser.add_argument("--non-iid", action="store_true", help="Dirichlet(0.5) shards")
    parser.add_argument("--participants", type=int, default=None, metavar="K")
    parser.add_argument("--warmup-rounds", type=int, default=None)
    parser.add_argument("--search-rounds", type=int, default=None)
    parser.add_argument(
        "--retrain", choices=("federated", "centralized"), default="federated"
    )
    parser.add_argument(
        "--staleness", choices=("none", "severe", "slight"), default="none",
        help="staleness mix during the search (Sec. VI-C)",
    )
    parser.add_argument(
        "--staleness-policy", choices=("compensate", "use", "throw"),
        default="compensate",
    )
    parser.add_argument(
        "--mobility", nargs="*", default=None, metavar="MODE",
        help="mobility modes for bandwidth traces (e.g. --mobility bus car)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--telemetry-log", default=None, metavar="PATH",
        help="also stream telemetry events to a JSONL run log at PATH",
    )
    parser.add_argument(
        "--no-telemetry", action="store_true",
        help="disable telemetry entirely (null sink, near-zero overhead)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the final metrics snapshot as Markdown tables",
    )
    return parser


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Summarize a JSONL telemetry run log",
    )
    parser.add_argument("path", help="run log written via --telemetry-log")
    parser.add_argument(
        "--top", type=int, default=5,
        help="how many slowest participants to show (default: 5)",
    )
    parser.add_argument(
        "--rounds", type=int, default=20, metavar="N",
        help="cap the per-round table at N rows (default: 20)",
    )
    return parser


def trace_main(argv=None) -> int:
    from .telemetry import load_events, render_trace, summarize_trace

    args = build_trace_parser().parse_args(argv)
    try:
        events = load_events(args.path)
    except OSError as exc:
        print(f"error: cannot read run log: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    summary = summarize_trace(events)
    print(render_trace(summary, top=args.top, max_round_rows=args.rounds))
    return 0


def config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    mixes = {
        "none": None,
        "severe": (0.3, 0.4, 0.2, 0.1),
        "slight": (0.9, 0.09, 0.009, 0.001),
    }
    overrides = dict(
        dataset=args.dataset,
        non_iid=args.non_iid,
        seed=args.seed,
        staleness_mix=mixes[args.staleness],
        staleness_policy=args.staleness_policy,
        mobility_modes=tuple(args.mobility) if args.mobility else None,
    )
    if args.participants is not None:
        overrides["num_participants"] = args.participants
    if args.warmup_rounds is not None:
        overrides["warmup_rounds"] = args.warmup_rounds
    if args.search_rounds is not None:
        overrides["search_rounds"] = args.search_rounds
    if getattr(args, "telemetry_log", None):
        overrides["telemetry_log_path"] = args.telemetry_log
    if getattr(args, "no_telemetry", False):
        overrides["telemetry_enabled"] = False
    profile = ExperimentConfig.paper if args.profile == "paper" else ExperimentConfig.small
    return profile(**overrides)


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    args = build_parser().parse_args(argv)
    config = config_from_args(args)
    pipeline = FederatedModelSearch(config)
    print(
        f"dataset={config.dataset} non_iid={config.non_iid} "
        f"K={config.num_participants} seed={config.seed}"
    )
    print(f"supernet: {pipeline.supernet.num_parameters():,} parameters")
    report = pipeline.run(retrain_mode=args.retrain)
    print()
    print("searched architecture:")
    print(report.genotype.describe())
    print()
    print(f"mean sub-model payload: {report.mean_submodel_bytes / 1e3:.1f} kB")
    print(f"searched-model parameters: {report.model_parameters:,}")
    print(f"test accuracy (P4): {report.test_accuracy:.4f}")
    if args.telemetry_log and config.telemetry_enabled:
        print(f"telemetry run log: {args.telemetry_log}")
        print(f"summarize with: python -m repro trace {args.telemetry_log}")
    if args.metrics and report.metrics:
        from .reporting import metrics_markdown

        print()
        print(metrics_markdown(report.metrics))
    pipeline.telemetry.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
