"""Command-line entry point: ``python -m repro``.

Three subcommands:

``repro run``
    Runs the four-phase federated model-search pipeline::

        python -m repro run --dataset cifar10 --non-iid --participants 4 \
            --search-rounds 60 --retrain federated --seed 0

    Prints the searched genotype, payload statistics, and the final test
    accuracy.  ``--profile paper`` switches to the full Table I scale
    (for real hardware); the default ``small`` profile finishes in well
    under a minute on a laptop CPU.  ``--backend process --workers 4``
    runs participant local steps on a worker pool (bit-identical results,
    lower wall-clock).  ``--config experiment.json`` loads an
    :class:`~repro.core.ExperimentConfig` from a JSON file; explicit CLI
    flags override file values, which override the profile defaults.
    ``--faults plan.json`` injects deterministic faults (corruption,
    drops, flaps, forced crashes); ``--checkpoint ckpt.zip
    --checkpoint-every N`` writes crash-consistent checkpoints and
    ``--resume ckpt.zip`` continues a run bit-identically (a run killed
    by an injected crash exits with status 3 and prints the resume
    command).

``repro trace``
    Summarizes a JSONL telemetry run log produced via
    ``repro run --telemetry-log run.jsonl`` (per-phase time breakdown,
    staleness histogram, slowest participants, per-round table, wire
    traffic).

``repro serve``
    Runs a participant worker daemon that executes local steps shipped
    over TCP by ``repro run --backend socket``::

        python -m repro serve --host 127.0.0.1 --port 7000

    ``--port 0`` picks a free port; the daemon announces
    ``REPRO-WORKER-READY <host> <port>`` on stdout once listening.
    Point a search at explicit daemons with
    ``--backend socket --socket-workers 127.0.0.1:7000 127.0.0.1:7001``;
    without ``--socket-workers`` the backend spawns local daemons
    itself.

Invoking ``python -m repro --dataset ...`` without a subcommand still
works as an alias for ``repro run`` but is deprecated.
"""

from __future__ import annotations

import argparse
import json
import sys

from .core import ExperimentConfig, FederatedModelSearch
from .faults import InjectedServerCrash


def _add_run_arguments(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    parser.add_argument(
        "--profile", choices=("small", "paper"), default="small",
        help="experiment scale (default: small)",
    )
    parser.add_argument(
        "--config", default=None, metavar="PATH",
        help="load ExperimentConfig fields from a JSON file; explicit CLI "
        "flags override file values, which override the profile defaults",
    )
    parser.add_argument(
        "--dataset", choices=("cifar10", "svhn", "cifar100"), default=None
    )
    parser.add_argument("--non-iid", action="store_true", help="Dirichlet(0.5) shards")
    parser.add_argument("--participants", type=int, default=None, metavar="K")
    parser.add_argument(
        "--population", type=int, default=None, metavar="N",
        help="population mode: register N lightweight participant records "
        "and sample a per-round cohort instead of running every "
        "participant every round; server memory stays O(cohort), not "
        "O(population)",
    )
    parser.add_argument(
        "--cohort-size", type=int, default=None, metavar="C",
        help="participants sampled per round in population mode "
        "(default: 50)",
    )
    parser.add_argument(
        "--cohort-strategy", choices=("uniform", "weighted"), default=None,
        help="cohort sampling: uniform over active participants, or "
        "weighted by device compute speed (default: uniform)",
    )
    parser.add_argument(
        "--churn-plan", default=None, metavar="PLAN.JSON",
        help="evolve the population from a repro.population.ChurnPlan "
        "JSON file (joins, permanent departures, temporary dropout "
        "flaps); seeded and deterministic",
    )
    parser.add_argument("--warmup-rounds", type=int, default=None)
    parser.add_argument("--search-rounds", type=int, default=None)
    parser.add_argument(
        "--retrain", choices=("federated", "centralized"), default="federated"
    )
    parser.add_argument(
        "--staleness", choices=("none", "severe", "slight"), default=None,
        help="staleness mix during the search (Sec. VI-C)",
    )
    parser.add_argument(
        "--staleness-policy", choices=("compensate", "use", "throw"),
        default=None,
    )
    parser.add_argument(
        "--mobility", nargs="*", default=None, metavar="MODE",
        help="mobility modes for bandwidth traces (e.g. --mobility bus car)",
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--backend", choices=("serial", "process", "socket"), default=None,
        help="execution engine for participant local steps "
        "(default: $REPRO_BACKEND or serial); seeded results are "
        "bit-identical across backends",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes/daemons for --backend process|socket "
        "(default: min(participants, cpu count))",
    )
    parser.add_argument(
        "--socket-workers", nargs="+", default=None, metavar="HOST:PORT",
        help="connect --backend socket to these already-running "
        "'repro serve' daemons instead of spawning local ones",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-task deadline before retry / offline fallback",
    )
    parser.add_argument(
        "--task-retries", type=int, default=None, metavar="N",
        help="retries per failed task, each on a different worker "
        "when possible (default: 1)",
    )
    parser.add_argument(
        "--wire-compression", choices=("none", "zlib"), default=None,
        help="payload compression for --backend socket (default: none)",
    )
    parser.add_argument(
        "--wire-dtype", choices=("float16", "float32", "float64"),
        default=None,
        help="wire precision for --backend socket tensors; float64 is "
        "lossless and preserves bit-identical results (default: float64)",
    )
    parser.add_argument(
        "--delta-dispatch", action="store_true",
        help="versioned delta dispatch for --backend process|socket: "
        "workers cache parameters by version and only changes ship "
        "(default: $REPRO_DELTA_DISPATCH; results are bit-identical "
        "either way)",
    )
    parser.add_argument(
        "--param-arena", action="store_true",
        help="flat parameter arena: supernet parameters/buffers live in "
        "one contiguous buffer and aggregation/snapshots/serialization "
        "run over ranges (default: $REPRO_PARAM_ARENA; results are "
        "bit-identical either way; with --resume, resumes the "
        "checkpoint into arena mode)",
    )
    parser.add_argument(
        "--tape", action="store_true",
        help="compiled compute engine: capture each (mask, shape) "
        "forward once and replay it with preallocated buffers "
        "(default: $REPRO_TAPE; float64 results are bit-identical "
        "either way)",
    )
    parser.add_argument(
        "--compute-dtype", choices=("float64", "float32"), default=None,
        help="replay dtype for --tape: float64 (reference, "
        "bit-identical) or float32 (opt-in, tolerance-verified; "
        "default: $REPRO_COMPUTE_DTYPE or float64)",
    )
    parser.add_argument(
        "--tape-fusion", action="store_true",
        help="fused conv-BN-ReLU tape primitive for --tape (analytic "
        "fused backward; tolerance-equal to the unfused composition; "
        "default: $REPRO_TAPE_FUSION)",
    )
    parser.add_argument(
        "--measure-wire", action="store_true",
        help="measure exact on-wire payload sizes each round and report "
        "them through telemetry (alongside the analytic Fig. 7 estimate)",
    )
    parser.add_argument(
        "--telemetry-log", default=None, metavar="PATH",
        help="also stream telemetry events to a JSONL run log at PATH",
    )
    parser.add_argument(
        "--no-telemetry", action="store_true",
        help="disable telemetry entirely (null sink, near-zero overhead)",
    )
    parser.add_argument(
        "--tracing", action="store_true",
        help="distributed tracing: tasks carry a trace context, workers "
        "time local-step phases, and span trees merge into the round "
        "timeline (default: $REPRO_TRACING; seeded results are "
        "bit-identical with tracing off or on)",
    )
    parser.add_argument(
        "--trace-ops", action="store_true",
        help="with --tracing: also profile per-op repro.nn forward time "
        "inside traced local steps (keyed by op name and input shape)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the final metrics snapshot as Markdown tables",
    )
    parser.add_argument(
        "--faults", default=None, metavar="PLAN.JSON",
        help="inject faults from a repro.faults.FaultPlan JSON file "
        "(corrupted updates, drops, flaps, forced crashes); seeded and "
        "deterministic",
    )
    parser.add_argument(
        "--network-faults", default=None, metavar="PLAN.JSON",
        help="inject wire-level chaos from a repro.faults.NetworkFaultPlan "
        "JSON file (latency, drops, refused dials, partitions, throttling, "
        "frame corruption); socket backend only, seeded and deterministic",
    )
    parser.add_argument(
        "--no-validation", action="store_true",
        help="disable the server-side update validation/quarantine boundary",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="write a crash-consistent search checkpoint to PATH "
        "(with --checkpoint-every)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="checkpoint every N warm-up/search rounds (requires --checkpoint)",
    )
    parser.add_argument(
        "--resume", default=None, metavar="CKPT",
        help="resume a run from a checkpoint written via --checkpoint; "
        "the embedded config is used (other config flags are ignored)",
    )
    return parser


def _add_trace_arguments(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    parser.add_argument("path", help="run log written via --telemetry-log")
    parser.add_argument(
        "--top", type=int, default=5,
        help="how many slowest participants to show (default: 5)",
    )
    parser.add_argument(
        "--rounds", type=int, default=20, metavar="N",
        help="cap the per-round table at N rows (default: 20)",
    )
    parser.add_argument(
        "--chrome", default=None, metavar="OUT.JSON",
        help="also export a Chrome/Perfetto trace-event JSON file "
        "(open at chrome://tracing or ui.perfetto.dev); one track per "
        "worker plus the server span track",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the full summary dict as JSON instead of the report",
    )
    return parser


def _add_serve_arguments(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="interface to listen on (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="TCP port to listen on; 0 picks a free port (default: 0)",
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="exit after this long with no server connection "
        "(default: run until shut down)",
    )
    parser.add_argument(
        "--no-tracing", action="store_true",
        help="do not advertise the tracing capability (behave like a "
        "pre-tracing worker; servers then strip trace contexts for "
        "this daemon)",
    )
    parser.add_argument(
        "--network-faults", default=None, metavar="PLAN.JSON",
        help="misbehave on the wire per a repro.faults.NetworkFaultPlan "
        "JSON file (worker-side chaos; see repro run --network-faults)",
    )
    return parser


def build_parser() -> argparse.ArgumentParser:
    """The ``repro run`` argument parser (also the deprecation-shim parser)."""
    return _add_run_arguments(
        argparse.ArgumentParser(
            prog="repro run",
            description="Run the four-phase federated model-search pipeline",
        )
    )


def build_trace_parser() -> argparse.ArgumentParser:
    return _add_trace_arguments(
        argparse.ArgumentParser(
            prog="repro trace",
            description="Summarize a JSONL telemetry run log",
        )
    )


def build_main_parser() -> argparse.ArgumentParser:
    """Top-level parser with the ``run`` and ``trace`` subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Federated model search via reinforcement learning "
        "(ICDCS 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", metavar="{run,trace,serve}")
    _add_run_arguments(
        sub.add_parser(
            "run",
            help="run the four-phase search pipeline",
            description="Run the four-phase federated model-search pipeline",
        )
    )
    _add_trace_arguments(
        sub.add_parser(
            "trace",
            help="summarize a JSONL telemetry run log",
            description="Summarize a JSONL telemetry run log",
        )
    )
    _add_serve_arguments(
        sub.add_parser(
            "serve",
            help="run a participant worker daemon for --backend socket",
            description="Run a participant worker daemon that executes "
            "local steps shipped over TCP by 'repro run --backend socket'",
        )
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    """Resolve profile defaults < ``--config`` file < explicit CLI flags."""
    mixes = {
        "none": None,
        "severe": (0.3, 0.4, 0.2, 0.1),
        "slight": (0.9, 0.09, 0.009, 0.001),
    }
    overrides = {}
    if args.dataset is not None:
        overrides["dataset"] = args.dataset
    if args.non_iid:
        overrides["non_iid"] = True
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.staleness is not None:
        overrides["staleness_mix"] = mixes[args.staleness]
    if args.staleness_policy is not None:
        overrides["staleness_policy"] = args.staleness_policy
    if args.mobility:
        overrides["mobility_modes"] = tuple(args.mobility)
    if args.participants is not None:
        overrides["num_participants"] = args.participants
    if getattr(args, "population", None) is not None:
        overrides["population"] = args.population
    if getattr(args, "cohort_size", None) is not None:
        overrides["cohort_size"] = args.cohort_size
    if getattr(args, "cohort_strategy", None) is not None:
        overrides["cohort_strategy"] = args.cohort_strategy
    if getattr(args, "churn_plan", None):
        overrides["churn_plan"] = args.churn_plan
    if args.warmup_rounds is not None:
        overrides["warmup_rounds"] = args.warmup_rounds
    if args.search_rounds is not None:
        overrides["search_rounds"] = args.search_rounds
    if getattr(args, "backend", None) is not None:
        overrides["backend"] = args.backend
    if getattr(args, "workers", None) is not None:
        overrides["num_workers"] = args.workers
    if getattr(args, "task_timeout", None) is not None:
        overrides["task_timeout_s"] = args.task_timeout
    if getattr(args, "task_retries", None) is not None:
        overrides["task_retries"] = args.task_retries
    if getattr(args, "socket_workers", None):
        overrides["socket_workers"] = tuple(args.socket_workers)
    if getattr(args, "wire_compression", None) is not None:
        overrides["socket_compression"] = args.wire_compression
    if getattr(args, "wire_dtype", None) is not None:
        overrides["socket_wire_dtype"] = args.wire_dtype
    if getattr(args, "delta_dispatch", False):
        overrides["delta_dispatch"] = True
    if getattr(args, "param_arena", False):
        overrides["param_arena"] = True
    if getattr(args, "tape", False):
        overrides["tape_compile"] = True
    if getattr(args, "compute_dtype", None) is not None:
        overrides["compute_dtype"] = args.compute_dtype
    if getattr(args, "tape_fusion", False):
        overrides["tape_fusion"] = True
    if getattr(args, "measure_wire", False):
        overrides["measure_wire_bytes"] = True
    if getattr(args, "telemetry_log", None):
        overrides["telemetry_log_path"] = args.telemetry_log
    if getattr(args, "no_telemetry", False):
        overrides["telemetry_enabled"] = False
    if getattr(args, "tracing", False):
        overrides["tracing_enabled"] = True
    if getattr(args, "trace_ops", False):
        overrides["tracing_enabled"] = True
        overrides["trace_ops"] = True
    if getattr(args, "faults", None):
        overrides["fault_plan_path"] = args.faults
    if getattr(args, "network_faults", None):
        overrides["network_faults"] = args.network_faults
    if getattr(args, "no_validation", False):
        overrides["validate_updates"] = False
    if getattr(args, "checkpoint", None):
        overrides["checkpoint_path"] = args.checkpoint
    if getattr(args, "checkpoint_every", None) is not None:
        overrides["checkpoint_every"] = args.checkpoint_every

    profile = ExperimentConfig.paper if args.profile == "paper" else ExperimentConfig.small
    if getattr(args, "config", None):
        try:
            with open(args.config, "r", encoding="utf-8") as handle:
                file_values = json.load(handle)
        except OSError as exc:
            raise ValueError(f"cannot read config file: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid JSON in {args.config}: {exc}") from exc
        if not isinstance(file_values, dict):
            raise ValueError(
                f"config file {args.config} must hold a JSON object, "
                f"got {type(file_values).__name__}"
            )
        base = profile().to_dict()
        merged = {**base, **file_values, **overrides}
        # Validate the file's keys/types even where overrides win.
        ExperimentConfig.from_dict({**base, **file_values})
        return ExperimentConfig.from_dict(merged)
    return profile(**overrides)


def run_main(args: argparse.Namespace) -> int:
    resume_from = getattr(args, "resume", None)
    if resume_from:
        # Result-neutral switches: a dict-mode checkpoint may be resumed
        # straight into arena mode, and the compiled engine may be
        # toggled on resume (tape caches are derived state — never
        # checkpointed, rebuilt on first use); all other flags are
        # ignored on resume.
        overrides = {}
        if getattr(args, "param_arena", False):
            overrides["param_arena"] = True
        if getattr(args, "tape", False):
            overrides["tape_compile"] = True
        if getattr(args, "compute_dtype", None) is not None:
            overrides["compute_dtype"] = args.compute_dtype
        if getattr(args, "tape_fusion", False):
            overrides["tape_fusion"] = True
        overrides = overrides or None
        try:
            pipeline = FederatedModelSearch.resume(
                resume_from, config_overrides=overrides
            )
        except (OSError, ValueError) as exc:
            print(f"error: cannot resume from {resume_from}: {exc}", file=sys.stderr)
            return 2
        config = pipeline.config
        print(f"resumed from {resume_from} at round {pipeline.server.round}")
    else:
        try:
            config = config_from_args(args)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        pipeline = FederatedModelSearch(config)
    print(
        f"dataset={config.dataset} non_iid={config.non_iid} "
        f"K={config.num_participants} seed={config.seed} "
        f"backend={pipeline.backend.name}"
    )
    print(f"supernet: {pipeline.supernet.num_parameters():,} parameters")
    try:
        report = pipeline.run(retrain_mode=args.retrain)
    except InjectedServerCrash as exc:
        print(f"error: {exc}", file=sys.stderr)
        if config.checkpoint_every and config.checkpoint_path:
            print(
                f"resume with: python -m repro run --resume {config.checkpoint_path}",
                file=sys.stderr,
            )
        return 3
    finally:
        pipeline.close()
    print()
    print("searched architecture:")
    print(report.genotype.describe())
    print()
    print(f"mean sub-model payload: {report.mean_submodel_bytes / 1e3:.1f} kB")
    print(f"searched-model parameters: {report.model_parameters:,}")
    print(f"test accuracy (P4): {report.test_accuracy:.4f}")
    if args.telemetry_log and config.telemetry_enabled:
        print(f"telemetry run log: {args.telemetry_log}")
        print(f"summarize with: python -m repro trace {args.telemetry_log}")
    if args.metrics and report.metrics:
        from .reporting import metrics_markdown

        print()
        print(metrics_markdown(report.metrics))
    return 0


def trace_main(argv=None) -> int:
    """Entry point for ``repro trace`` (accepts raw argv for back-compat)."""
    args = build_trace_parser().parse_args(argv)
    return _trace_main(args)


def _trace_main(args: argparse.Namespace) -> int:
    import warnings

    from .telemetry import (
        export_chrome_trace,
        load_events,
        render_trace,
        summarize_trace,
    )

    try:
        with warnings.catch_warnings():
            # Malformed lines (truncated tail of a killed run) are
            # counted and surfaced in the report instead of warned.
            warnings.simplefilter("ignore", RuntimeWarning)
            events = load_events(args.path)
    except OSError as exc:
        print(f"error: cannot read run log: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if getattr(events, "malformed_lines", 0):
        print(
            f"warning: skipped {events.malformed_lines} malformed JSONL "
            f"line(s) in {args.path}",
            file=sys.stderr,
        )
    chrome_path = getattr(args, "chrome", None)
    if chrome_path:
        with open(chrome_path, "w", encoding="utf-8") as handle:
            json.dump(export_chrome_trace(events), handle)
        print(f"chrome trace written to {chrome_path}", file=sys.stderr)
    summary = summarize_trace(events)
    if getattr(args, "json", False):
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_trace(summary, top=args.top, max_round_rows=args.rounds))
    return 0


def serve_main(args: argparse.Namespace) -> int:
    from .faults.network import NetworkFaultPlan
    from .transport import serve

    plan = None
    if getattr(args, "network_faults", None):
        plan = NetworkFaultPlan.load(args.network_faults)
    try:
        serve(
            host=args.host,
            port=args.port,
            idle_timeout_s=args.idle_timeout,
            tracing=not getattr(args, "no_tracing", False),
            network_fault_plan=plan,
        )
    except KeyboardInterrupt:
        pass
    except OSError as exc:
        print(f"error: cannot listen on {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in ("run", "trace", "serve"):
        args = build_main_parser().parse_args(argv)
        if args.command == "trace":
            return _trace_main(args)
        if args.command == "serve":
            return serve_main(args)
        return run_main(args)
    if argv and argv[0] in ("-h", "--help"):
        build_main_parser().parse_args(argv)
        return 0
    # Deprecation shim: bare ``python -m repro [flags]`` means ``repro run``.
    if argv:
        print(
            "warning: invoking 'python -m repro' without a subcommand is "
            "deprecated; use 'python -m repro run ...'",
            file=sys.stderr,
        )
    return run_main(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
