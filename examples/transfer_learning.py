#!/usr/bin/env python
"""Architecture transferability (paper Sec. VI-E, Tables VII-VIII, Fig. 11).

Searching is the expensive phase, so a common workflow transfers the
*architecture* found on one dataset to another and only retrains the
weights.  This example searches on the CIFAR10 stand-in, then retrains
the genotype from scratch on the harder CIFAR100 stand-in (more classes),
comparing against an architecture searched directly on CIFAR100.
"""

import numpy as np

from repro import ExperimentConfig, FederatedModelSearch
from repro.core.phases import evaluate, retrain_centralized


def search_genotype(dataset: str, seed: int):
    config = ExperimentConfig.small(
        dataset=dataset,
        num_participants=4,
        warmup_rounds=10,
        search_rounds=35,
        seed=seed,
    )
    pipeline = FederatedModelSearch(config)
    pipeline.warm_up()
    pipeline.search()
    return pipeline.derive()


def main() -> None:
    print("searching on cifar10 ...")
    cifar10_genotype = search_genotype("cifar10", seed=0)
    print(cifar10_genotype.describe())

    print("\nsearching directly on cifar100 ...")
    cifar100_genotype = search_genotype("cifar100", seed=0)

    target = ExperimentConfig.small(dataset="cifar100", retrain_epochs=8, seed=1)
    target_pipeline = FederatedModelSearch(target)
    train, test = target_pipeline.train_set, target_pipeline.test_set

    rows = []
    for label, genotype in (
        ("transferred (cifar10 -> cifar100)", cifar10_genotype),
        ("searched on cifar100", cifar100_genotype),
    ):
        model, _ = retrain_centralized(
            genotype, target, train, test, rng=np.random.default_rng(5)
        )
        accuracy = evaluate(model, test)
        rows.append((label, accuracy, model.num_parameters()))

    print(f"\n{'architecture':<36} {'accuracy':>9} {'params':>9}")
    for label, accuracy, params in rows:
        print(f"{label:<36} {accuracy:9.3f} {params:9,}")
    print("\nthe transferred architecture should remain competitive "
          "(paper: within ~1% of the natively searched one).")


if __name__ == "__main__":
    main()
