#!/usr/bin/env python
"""Delay-compensated soft synchronisation under severe staleness (Fig. 8).

Runs the search phase four times on the same warmed-up supernet under the
paper's severe staleness mix (30% fresh / 40% one round late / 20% two
rounds late / 10% beyond threshold) with different straggler policies:

* none        — hard synchronisation (the staleness-free reference),
* throw       — discard every stale update,
* use         — apply stale updates verbatim,
* compensate  — our second-order Taylor repair (Eq. 13, 15).

Expected ordering of final search accuracy (paper Fig. 8):
compensate ~ none > use > throw.
"""

import copy

import numpy as np

from repro.controller import ArchitecturePolicy
from repro.data import iid_partition, synth_cifar10
from repro.federated import (
    DistributionDelay,
    FederatedSearchServer,
    HardSync,
    Participant,
    SearchServerConfig,
)
from repro.search_space import Supernet, SupernetConfig

SEVERE_MIX = [0.3, 0.4, 0.2, 0.1]
ROUNDS = 80


def build_server(policy_name, shared_state, shards, seed):
    rng = np.random.default_rng(seed)
    config = SupernetConfig(num_classes=10, init_channels=4, num_cells=2, steps=1)
    supernet = Supernet(config, rng=rng)
    supernet.load_state_dict(shared_state)  # all variants share the warm-up
    policy = ArchitecturePolicy(config.num_edges, rng=np.random.default_rng(7))
    participants = [
        Participant(k, shard, batch_size=16, rng=np.random.default_rng(100 + k))
        for k, shard in enumerate(shards)
    ]
    if policy_name == "none":
        delay, staleness_policy = HardSync(), "compensate"
    else:
        delay = DistributionDelay(
            SEVERE_MIX, staleness_threshold=2, rng=np.random.default_rng(13)
        )
        staleness_policy = policy_name
    server_config = SearchServerConfig(
        theta_lr=0.1,
        staleness_policy=staleness_policy,
        staleness_threshold=2,
        compensation_lambda=1.0,
    )
    return FederatedSearchServer(
        supernet, policy, participants, config=server_config,
        delay_model=delay, rng=np.random.default_rng(29),
    )


def main() -> None:
    train, _ = synth_cifar10(seed=2, train_per_class=20, test_per_class=4, image_size=8)
    shards = iid_partition(train, 4, rng=np.random.default_rng(0))

    # Shared warm-up so every curve starts from the same supernet (as the
    # paper notes for Fig. 8).
    warm = build_server("none", Supernet(
        SupernetConfig(num_classes=10, init_channels=4, num_cells=2, steps=1),
        rng=np.random.default_rng(1),
    ).state_dict(), shards, seed=1)
    warm.config.update_alpha = False
    warm.run(15)
    shared_state = warm.supernet.state_dict()

    print(f"severe staleness mix: {SEVERE_MIX} "
          "(fresh / 1 late / 2 late / beyond threshold)\n")
    results = {}
    for name in ("none", "throw", "use", "compensate"):
        server = build_server(name, shared_state, shards, seed=2)
        rounds = server.run(ROUNDS)
        # Rounds where no update survives (possible under "throw") yield
        # NaN rewards; nanmean skips them.
        tail = np.nanmean([r.mean_reward for r in rounds[-20:]])
        dropped = sum(r.num_dropped for r in rounds)
        stale = sum(r.num_stale_used for r in rounds)
        results[name] = tail
        print(f"{name:<11} final search accuracy {tail:.3f}   "
              f"(stale used: {stale:3d}, dropped: {dropped:3d})")

    print("\nexpected ordering (paper Fig. 8): "
          "compensate ≈ none > use > throw")
    print(f"observed:   compensate={results['compensate']:.3f}  "
          f"none={results['none']:.3f}  use={results['use']:.3f}  "
          f"throw={results['throw']:.3f}")


if __name__ == "__main__":
    main()
