#!/usr/bin/env python
"""Telemetry tour: run logs, metrics, and the trace report.

Runs a small federated search with the JSONL file sink enabled, then
shows the three ways to look at what happened:

  1. the final metrics snapshot (counters / gauges / p50-p95 histograms)
     attached to the returned SearchReport,
  2. the raw structured events in the JSONL run log,
  3. the aggregated trace report — the same output as
     ``python -m repro trace run.jsonl``.

Expected runtime: a few seconds on a laptop CPU.
"""

import tempfile
from pathlib import Path

from repro import ExperimentConfig, FederatedModelSearch
from repro.reporting import metrics_markdown
from repro.telemetry import load_events, render_trace, summarize_trace


def main() -> None:
    log_path = Path(tempfile.mkdtemp()) / "run.jsonl"
    config = ExperimentConfig.small(
        non_iid=True,
        num_participants=4,
        warmup_rounds=4,
        search_rounds=12,
        retrain_epochs=2,
        fl_retrain_rounds=6,
        staleness_mix=(0.6, 0.3, 0.1),  # some updates arrive late
        mobility_modes=("bus", "car"),  # heterogeneous bandwidth traces
        telemetry_log_path=str(log_path),
        seed=0,
    )
    pipeline = FederatedModelSearch(config)
    report = pipeline.run(retrain_mode="federated")
    pipeline.telemetry.close()

    print("=== 1. metrics snapshot (SearchReport.metrics) ===")
    print(metrics_markdown(report.metrics))
    print()

    events = load_events(str(log_path))
    print(f"=== 2. run log: {len(events)} JSONL events at {log_path} ===")
    for event in events[:5]:
        print(f"  {event}")
    print("  ...")
    print()

    print("=== 3. trace report (python -m repro trace run.jsonl) ===")
    print(render_trace(summarize_trace(events)))


if __name__ == "__main__":
    main()
