#!/usr/bin/env python
"""Tour of chaos testing and resilient dispatch (``repro.faults.network``).

Builds a seeded :class:`NetworkFaultPlan` that injects latency, mid-frame
drops, and a blackhole partition into the socket backend's wire traffic,
runs a short federated search under it, and prints what the resilience
machinery did about it: injected-fault counts, circuit-breaker
transitions, hedged dispatches, and the per-worker health table — the
same "Worker health / chaos" section ``repro trace`` renders.

Then it reruns with an *empty* plan and shows the chaos layer is inert:
the report matches a plain serial run bit for bit.  The chaos RNG
streams are private (derived from the plan seed, never the experiment
seed), which is what makes that guarantee possible.

Equivalent CLI::

    python -m repro run --profile small --backend socket \
        --network-faults plan.json --telemetry-log run.jsonl
    python -m repro trace run.jsonl
"""

import sys
import tempfile
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.core import ExperimentConfig, FederatedModelSearch  # noqa: E402
from repro.faults.network import (  # noqa: E402
    NetworkFaultPlan,
    NetworkFaultSpec,
)
from repro.telemetry.trace import render_trace, summarize_trace  # noqa: E402


def run_search(network_faults=None, backend="socket"):
    config = ExperimentConfig.small(
        backend=backend,
        num_workers=2 if backend != "serial" else 0,
        num_participants=4,
        train_per_class=8,
        test_per_class=2,
        warmup_rounds=1,
        search_rounds=3,
        retrain_epochs=1,
        fl_retrain_rounds=1,
        seed=7,
        network_faults=network_faults,
        # fast-recovery knobs so the short demo shows breaker activity
        breaker_cooldown_s=0.5,
        retry_backoff_base_s=0.02,
        hedge_threshold_s=0.25,
    )
    pipeline = FederatedModelSearch(config)
    try:
        report = pipeline.run()
        events = list(pipeline.telemetry.events())
    finally:
        pipeline.close()
    return report, events


def main() -> None:
    plan = NetworkFaultPlan(
        seed=11,
        faults=(
            NetworkFaultSpec(kind="latency", probability=0.4,
                             latency_s=0.03, jitter_s=0.02),
            NetworkFaultSpec(kind="drop", probability=0.05),
            NetworkFaultSpec(kind="blackhole", probability=0.02,
                             duration_s=0.5),
        ),
    )
    with tempfile.TemporaryDirectory() as tmp:
        plan_path = Path(tmp) / "plan.json"
        plan.save(plan_path)
        print(f"fault plan ({plan_path.name}):")
        print(plan.to_json())

        print("\n--- chaos run (socket backend, faults injected) ---")
        chaos_report, events = run_search(network_faults=str(plan_path))
        summary = summarize_trace(events)
        text = render_trace(summary)
        marker = "## Worker health / chaos"
        section = text[text.index(marker):] if marker in text else text
        print(section.split("\n##")[0].rstrip())
        print(f"\nchaos-run genotype: {chaos_report.genotype}")

        print("\n--- empty plan: chaos layer is provably inert ---")
        empty_path = Path(tmp) / "empty.json"
        NetworkFaultPlan(seed=11).save(empty_path)
        clean_report, _ = run_search(network_faults=str(empty_path))
        serial_report, _ = run_search(backend="serial")
        identical = (
            clean_report.genotype == serial_report.genotype
            and clean_report.test_accuracy == serial_report.test_accuracy
            and repr(clean_report.search_results)
            == repr(serial_report.search_results)
        )
        print(f"socket+empty-plan == serial, bit for bit: {identical}")
        assert identical


if __name__ == "__main__":
    main()
