#!/usr/bin/env python
"""Adaptive transmission across mobility environments (paper Fig. 7).

Samples a round of sub-models from a warm policy, then dispatches them to
10 participants whose bandwidths follow synthetic 4G/LTE traces for
different mobility settings (foot, bus+car, train, ...).  For each
environment, compares the maximum transmission latency of:

* adaptive  — largest sub-model to the fastest link (ours),
* average   — everyone ships an average-sized model (FedNAS-style),
* random    — blind assignment.
"""

import numpy as np

from repro.controller import ArchitecturePolicy
from repro.network import mixed_traces, round_transmission
from repro.nn import state_size_bytes
from repro.search_space import Supernet, SupernetConfig

ENVIRONMENTS = {
    "Foot": ["foot"],
    "Bicycle": ["bicycle"],
    "Bus+Car": ["bus", "car"],
    "Tram": ["tram"],
    "Train": ["train"],
    "Foot+Train": ["foot", "train"],
}


def main() -> None:
    rng = np.random.default_rng(0)
    config = SupernetConfig(init_channels=8, num_cells=3, steps=2)
    supernet = Supernet(config, rng=rng)
    policy = ArchitecturePolicy(config.num_edges, rng=rng)

    # One round's worth of sub-models: sizes vary with the sampled ops.
    sizes = [
        float(state_size_bytes(supernet.submodel_state(policy.sample_mask())))
        for _ in range(10)
    ]
    print(f"sub-model sizes this round: "
          f"{min(sizes) / 1e3:.0f}-{max(sizes) / 1e3:.0f} kB "
          f"(supernet: {supernet.size_bytes() / 1e3:.0f} kB)\n")

    header = f"{'environment':<12} {'adaptive':>9} {'average':>9} {'random':>9}"
    print(header)
    print("-" * len(header))
    for name, modes in ENVIRONMENTS.items():
        traces = mixed_traces(modes, 10, rng=np.random.default_rng(hash(name) % 2**31))
        row = [name]
        for strategy in ("adaptive", "average", "random"):
            latencies = [
                round_transmission(
                    sizes, traces, strategy, start_time=60.0 * i,
                    rng=np.random.default_rng(i),
                ).max_latency_s
                for i in range(5)
            ]
            row.append(f"{np.mean(latencies):9.3f}")
        print(f"{row[0]:<12} {row[1]} {row[2]} {row[3]}  (max latency, s)")

    print("\nadaptive should give the lowest column, as in paper Fig. 7.")


if __name__ == "__main__":
    main()
