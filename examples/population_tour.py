#!/usr/bin/env python
"""Population tour: registry, cohort sampling, churn, and the trace report.

Classic mode runs every participant every round — fine for a handful of
devices, impossible for the cross-device regime the paper targets.
Population mode registers a large fleet as lightweight records and each
round samples a small cohort, evolves the fleet through a seeded churn
plan, and streams the cohort's updates into the aggregate as they
arrive.  This tour:

  1. registers 2,000 participants and runs a short search over cohorts
     of 16 — materialising only the sampled members (watch the
     ``materializations`` counter: it stays O(rounds x cohort), nowhere
     near the registry size);
  2. attaches a churn plan (joins, permanent departures, dropout flaps)
     and shows the fleet evolving round over round;
  3. renders the "## Population" section of the trace report — the same
     output as ``python -m repro trace run.jsonl``.

Expected runtime: under a minute on a laptop CPU.
"""

import tempfile
from pathlib import Path

from repro import ExperimentConfig, FederatedModelSearch
from repro.population import ChurnPlan
from repro.telemetry import load_events, render_trace, summarize_trace


def main() -> None:
    workdir = Path(tempfile.mkdtemp())
    plan_path = workdir / "churn.json"
    ChurnPlan(
        join_rate=2.0,        # ~2 new enrollments per round (Poisson)
        departure_prob=0.005,  # 0.5% of active devices leave for good
        dropout_prob=0.03,     # 3% flap offline for 1-3 rounds
        dropout_rounds_min=1,
        dropout_rounds_max=3,
        seed=11,
    ).save(plan_path)

    log_path = workdir / "run.jsonl"
    config = ExperimentConfig.small(
        population=2000,
        cohort_size=16,
        cohort_strategy="weighted",  # bias toward fast devices
        churn_plan=str(plan_path),
        warmup_rounds=3,
        search_rounds=9,
        retrain_epochs=2,
        fl_retrain_rounds=4,
        telemetry_log_path=str(log_path),
        seed=0,
    )
    pipeline = FederatedModelSearch(config)
    registry = pipeline.population.registry

    print(f"=== 1. registry: {registry.num_registered} registered, "
          f"{registry.materializations} materialized (construction is lazy) ===")
    report = pipeline.run(retrain_mode="federated")
    pipeline.telemetry.close()
    counts = registry.counts()
    print(f"after the run: {counts['registered']} registered, "
          f"{counts['active']} active, {counts['dormant']} dormant, "
          f"{counts['departed']} departed")
    print(f"materializations: {registry.materializations} "
          f"(= dispatched cohort slots, not the fleet)")
    print(f"searched genotype: {report.genotype.normal[:2]} ...")
    print()

    print("=== 2. per-round population telemetry ===")
    events = load_events(str(log_path))
    for event in events:
        if event.get("event") == "population.round":
            print(f"  round {event['round']}: cohort={event['cohort']} "
                  f"active={event['active']} dormant={event['dormant']} "
                  f"departed={event['departed']}")
    print()

    print("=== 3. trace report (python -m repro trace run.jsonl) ===")
    rendered = render_trace(summarize_trace(events))
    section = rendered.split("## Population")[1].split("\n## ")[0]
    print("## Population" + section)


if __name__ == "__main__":
    main()
