#!/usr/bin/env python
"""Tour of the fault-tolerant search runtime.

Three acts:

1. **Chaos, contained** — run a search while a fault plan corrupts one
   participant's gradients (NaNs), drops another's replies in transit,
   and flaps a third's availability.  The validation boundary rejects
   the garbage before it can touch θ/α, and the repeat offender is
   quarantined with exponential back-off.
2. **Crash** — the same plan kills the server mid-search
   (``crash_server``).  Because the pipeline checkpoints every round,
   the crash costs nothing.
3. **Resume** — rebuild the whole pipeline from the checkpoint file
   alone and run to completion.  Every RNG stream, in-flight straggler
   update, and quarantine sentence is restored, so the resumed run is
   bit-identical to one that never crashed.

Everything is seeded: run it twice and every injected fault, rejection,
and accuracy lands on the same round.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import ExperimentConfig, FederatedModelSearch
from repro.faults import FaultPlan, FaultSpec, InjectedServerCrash


def build_plan(path: Path) -> FaultPlan:
    plan = FaultPlan(
        seed=7,
        faults=(
            # participant 0 sends NaN gradients every round
            FaultSpec(kind="corrupt_nan", participant=0),
            # participant 1's replies are sometimes lost in transit
            FaultSpec(kind="drop_update", participant=1, probability=0.3),
            # participant 2's connection flaps
            FaultSpec(kind="offline", participant=2, probability=0.3),
            # and at round 6 the server process dies
            FaultSpec(kind="crash_server", round_start=6),
        ),
    )
    plan.save(path)
    return plan


def build_config(plan_path: Path, ckpt_path: Path) -> ExperimentConfig:
    return ExperimentConfig.small(
        num_participants=4,
        train_per_class=8,
        test_per_class=3,
        warmup_rounds=3,
        search_rounds=6,
        retrain_epochs=2,
        fl_retrain_rounds=3,
        batch_size=8,
        seed=0,
        fault_plan_path=str(plan_path),
        checkpoint_every=1,
        checkpoint_path=str(ckpt_path),
    )


def main() -> None:
    workdir = Path(tempfile.mkdtemp())
    plan_path = workdir / "plan.json"
    ckpt_path = workdir / "search.ckpt"
    plan = build_plan(plan_path)
    print(f"fault plan ({plan_path}):")
    for spec in plan.faults:
        print(f"  - {spec.to_dict()}")

    print("\nact 1+2: searching under fire (crash scheduled at round 6) ...")
    pipeline = FederatedModelSearch(build_config(plan_path, ckpt_path))
    try:
        pipeline.run()
        raise AssertionError("the injected crash should have fired")
    except InjectedServerCrash as crash:
        print(f"  server died: {crash}")
    finally:
        pipeline.close()

    metrics = pipeline.telemetry.metrics_snapshot()
    print("  what the telemetry saw before the crash:")
    for key in sorted(metrics):
        if key.startswith(("faults.", "updates.rejected", "rounds.degraded")):
            print(f"    {key}: {int(metrics[key]['value'])}")
    quarantine = pipeline.server.quarantine.state_dict()
    print(f"  quarantine record: {quarantine}")

    print(f"\nact 3: resuming from {ckpt_path.name} "
          f"({ckpt_path.stat().st_size / 1e3:.1f} kB) ...")
    resumed = FederatedModelSearch.resume(str(ckpt_path))
    print(f"  restored at round {resumed.server.round} with "
          f"{len(resumed.server._pending)} straggler update(s) in flight")
    try:
        report = resumed.run()
    finally:
        resumed.close()

    assert np.isfinite(resumed.policy.alpha).all()
    print("\nsearched architecture (NaN-free despite participant 0's "
          "best efforts):")
    print(report.genotype.describe())
    print(f"test accuracy (P4): {report.test_accuracy:.4f}")
    print("\nrun this script again — every fault lands on the same round.")


if __name__ == "__main__":
    main()
