#!/usr/bin/env python
"""Searched vs pre-determined models on non-i.i.d. federated data.

The paper's core motivation (Sec. I): a fixed hand-designed model often
fits label-skewed federated data poorly, while a searched architecture
adapts.  This example:

1. builds a Dirichlet(0.5) non-iid partition of the CIFAR10 stand-in,
2. searches an architecture with the RL-based federated method,
3. retrains it federatedly (P3) alongside a fixed deep residual baseline
   (the paper's ResNet152 role) of many more parameters,
4. compares test accuracy and model size — the Table IV story.
"""

import numpy as np

from repro import ExperimentConfig, FederatedModelSearch
from repro.baselines import resnet_stand_in
from repro.data import skewness, standard_augmentation
from repro.evaluation import evaluate_accuracy
from repro.federated import FedAvgConfig, FedAvgTrainer


def main() -> None:
    config = ExperimentConfig.small(
        non_iid=True,
        num_participants=4,
        warmup_rounds=10,
        search_rounds=40,
        fl_retrain_rounds=25,
        seed=1,
    )
    pipeline = FederatedModelSearch(config)
    print(f"label skew across shards: {skewness(pipeline.shards):.3f} "
          "(0 = perfectly iid)")

    report = pipeline.run(retrain_mode="federated")
    print(f"\nsearched model: {report.model_parameters:,} params, "
          f"test accuracy {report.test_accuracy:.3f}")

    # The pre-determined baseline, trained with the same FedAvg recipe.
    fixed = resnet_stand_in(
        num_classes=config.num_classes, rng=np.random.default_rng(config.seed)
    )
    trainer = FedAvgTrainer(
        fixed,
        pipeline.shards,
        FedAvgConfig(
            lr=config.fl_lr,
            momentum=config.fl_momentum,
            weight_decay=config.fl_weight_decay,
            batch_size=config.batch_size,
        ),
        transform=standard_augmentation(config.image_size),
        rng=np.random.default_rng(config.seed),
    )
    trainer.run(config.fl_retrain_rounds)
    fixed_accuracy = evaluate_accuracy(fixed, pipeline.test_set)
    print(f"fixed model:    {fixed.num_parameters():,} params, "
          f"test accuracy {fixed_accuracy:.3f}")

    ratio = fixed.num_parameters() / max(report.model_parameters, 1)
    print(f"\nthe fixed baseline is {ratio:.1f}x larger; on non-iid shards the "
          "searched architecture should match or beat it "
          "(paper Table IV: 18.56% vs 22.40% error at 1/15 the size).")


if __name__ == "__main__":
    main()
