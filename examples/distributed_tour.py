#!/usr/bin/env python
"""Tour of the networked participant runtime (``repro.transport``).

Starts two worker daemons the way an operator would — ``python -m repro
serve`` subprocesses on OS-assigned localhost ports — then points a
short federated search at them with ``backend="socket"`` and explicit
``socket_workers`` addresses.  Afterwards it prints what moved on the
wire (measured bytes, task RTTs, per-round traffic) and shows that the
daemons survive the run: the backend disconnects from external workers
on close instead of shutting them down.  The run is traced
(``tracing_enabled`` + ``trace_ops``): afterwards it prints the
critical-path blame per round and exports a Chrome/Perfetto trace —
the equivalent of ``python -m repro trace run.jsonl --chrome out.json``.

Everything here also works with zero configuration: drop the
``socket_workers`` line (or set ``REPRO_BACKEND=socket``) and the
backend spawns and manages local daemons by itself.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.core import ExperimentConfig, FederatedModelSearch  # noqa: E402
from repro.telemetry import (  # noqa: E402
    Telemetry,
    export_chrome_trace,
    load_events,
    summarize_trace,
)
from repro.transport import READY_PREFIX  # noqa: E402


def start_daemon() -> tuple:
    """``python -m repro serve --port 0`` → (process, "host:port")."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--idle-timeout", "120"],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    line = proc.stdout.readline()  # REPRO-WORKER-READY <host> <port>
    assert line.startswith(READY_PREFIX), line
    _, host, port = line.split()
    return proc, f"{host}:{port}"


def main() -> None:
    print("starting two worker daemons ...")
    daemons = [start_daemon() for _ in range(2)]
    addresses = tuple(address for _, address in daemons)
    for proc, address in daemons:
        print(f"  worker pid={proc.pid} at {address}")

    log_path = Path(tempfile.mkdtemp(prefix="repro-tour-")) / "run.jsonl"
    config = ExperimentConfig.small(
        seed=0,
        num_participants=4,
        warmup_rounds=1,
        search_rounds=4,
        retrain_epochs=1,
        backend="socket",
        socket_workers=addresses,
        measure_wire_bytes=True,  # exact npz sizes alongside Fig. 7 estimate
        delta_dispatch=True,  # ship only changed params after round 1
        tracing_enabled=True,  # cross-process spans on every task
        trace_ops=True,  # per-op forward profile on the workers
        telemetry_log_path=str(log_path),
    )
    pipeline = FederatedModelSearch(config)
    print(f"\nsearching over {addresses} (backend={pipeline.backend.name}) ...")
    start = time.perf_counter()
    try:
        report = pipeline.run(retrain_mode="centralized")
    finally:
        pipeline.close()  # disconnects; external daemons stay up
    print(f"done in {time.perf_counter() - start:.1f}s wall clock")
    print(f"test accuracy: {report.test_accuracy:.4f}")

    # ------------------------------------------------------------------
    # What moved on the wire, from the telemetry the backend recorded.
    # ------------------------------------------------------------------
    metrics = report.metrics or {}
    sent = metrics.get("transport.bytes_sent", {}).get("value", 0)
    received = metrics.get("transport.bytes_received", {}).get("value", 0)
    rtt = metrics.get("transport.task_rtt_s", {})
    print("\nwire traffic:")
    print(f"  sent:     {sent / 1e3:,.1f} kB (tasks, frames + headers)")
    print(f"  received: {received / 1e3:,.1f} kB (updates)")
    if rtt.get("count"):
        print(
            f"  task RTT: mean {rtt['mean'] * 1e3:.1f} ms over "
            f"{rtt['count']} tasks (max {rtt['max'] * 1e3:.1f} ms)"
        )
    wire = metrics.get("transmission.wire_bytes", {})
    if wire.get("count"):
        print(
            f"  measured sub-model payload: mean {wire['mean'] / 1e3:.1f} kB "
            f"(exact npz size; analytic estimate "
            f"{report.mean_submodel_bytes / 1e3:.1f} kB)"
        )

    # ------------------------------------------------------------------
    # Delta dispatch: how much of the dispatched state the worker-side
    # caches absorbed (full syncs are first contact / resync rounds).
    # ------------------------------------------------------------------
    shipped = int(metrics.get("dispatch.delta_params", {}).get("value", 0))
    cached = int(metrics.get("dispatch.cached_params", {}).get("value", 0))
    full_syncs = int(metrics.get("dispatch.full_syncs", {}).get("value", 0))
    misses = int(metrics.get("dispatch.cache_misses", {}).get("value", 0))
    total = shipped + cached
    if total:
        print("\ndelta dispatch:")
        print(f"  params shipped: {shipped:,} of {total:,} dispatched")
        print(f"  served from worker caches: {cached:,} "
              f"({100.0 * cached / total:.1f}% cache hit)")
        print(f"  full syncs: {full_syncs}, cache misses: {misses}")

    # ------------------------------------------------------------------
    # Distributed tracing: merge the worker spans back out of the run
    # log, show where each round's wall time went, and export a Chrome
    # trace (same as `python -m repro trace run.jsonl --chrome out.json`).
    # ------------------------------------------------------------------
    pipeline.telemetry.close()  # flush the JSONL sink
    events = load_events(log_path)
    summary = summarize_trace(events)
    critical = summary.get("critical_path")
    if critical:
        blame = critical["blame"]
        print("\ncritical path blame across traced rounds:")
        for part, fraction in sorted(
            blame.items(), key=lambda kv: kv[1], reverse=True
        ):
            print(f"  {part:<9} {100.0 * fraction:5.1f}%")
        slowest = max(critical["rounds"], key=lambda r: r["wall_s"])
        print(
            f"  slowest round: {slowest['phase']} round {slowest['round']} "
            f"({slowest['wall_s'] * 1e3:.0f} ms, critical task on worker "
            f"{slowest['worker']})"
        )
    if summary.get("ops"):
        hottest = summary["ops"][0]
        print(
            f"hottest op: {hottest['op']} [{hottest['shape']}] — "
            f"{hottest['count']} calls, "
            f"{hottest['total_s'] * 1e3:.1f} ms total forward time"
        )
    chrome_path = log_path.with_suffix(".chrome.json")
    with open(chrome_path, "w") as handle:
        json.dump(export_chrome_trace(events), handle)
    print(f"chrome trace written to {chrome_path} "
          f"(open in chrome://tracing or ui.perfetto.dev)")

    # ------------------------------------------------------------------
    # The daemons are still alive — close() never shuts down workers it
    # did not spawn.  An operator stops them explicitly.
    # ------------------------------------------------------------------
    print("\ndaemon status after close():")
    for proc, address in daemons:
        state = "alive" if proc.poll() is None else f"exited({proc.poll()})"
        print(f"  {address}: {state}")
    for proc, _ in daemons:
        proc.send_signal(signal.SIGTERM)
    for proc, _ in daemons:
        proc.wait(timeout=10)
    print("daemons stopped.")

    tape_demo()


def tape_demo() -> None:
    """Compiled compute engine: tape + fusion, with per-op replay timings.

    The tape pays off when masks repeat — the late-search steady state —
    so this demo sharpens the controller onto one operation first: every
    round after the first then replays the same captured graph.  The run
    is traced, so afterwards the trace summary carries the tape counters
    and a per-op replay profile (the same numbers ``python -m repro
    trace run.jsonl`` renders).
    """
    import types

    import numpy as np

    from repro.controller import ArchitecturePolicy
    from repro.data import iid_partition, synth_cifar10
    from repro.federated import FederatedSearchServer, Participant, SerialBackend
    from repro.federated import compiled
    from repro.nn import tape
    from repro.search_space import Supernet, SupernetConfig
    from repro.telemetry import build_telemetry

    print("\ncompiled compute engine (tape + fusion) demo:")
    net = SupernetConfig(num_classes=10, init_channels=4, num_cells=2, steps=1)
    log_path = Path(tempfile.mkdtemp(prefix="repro-tape-")) / "tape.jsonl"
    telemetry = build_telemetry(types.SimpleNamespace(
        telemetry_enabled=True,
        telemetry_log_path=str(log_path),
        tracing_enabled=True,
        trace_ops=True,
        telemetry_buffer_size=65536,
    ))

    def converged_server(with_telemetry):
        rng = np.random.default_rng(0)
        train, _ = synth_cifar10(
            seed=1, train_per_class=20, test_per_class=2, image_size=8
        )
        shards = iid_partition(train, 4, rng=np.random.default_rng(0))
        parts = [
            Participant(k, s, batch_size=16, rng=np.random.default_rng(100 + k))
            for k, s in enumerate(shards)
        ]
        tel = telemetry if with_telemetry else None
        backend = SerialBackend(parts, net, telemetry=tel)
        server = FederatedSearchServer(
            Supernet(net, rng=rng),
            ArchitecturePolicy(net.num_edges, rng=rng),
            parts,
            rng=rng,
            backend=backend,
            telemetry=tel,
        )
        # Late-search stand-in: one op dominates, so masks repeat.
        server.policy.alpha[:] = 0.0
        server.policy.alpha[..., 2] = 25.0
        return server

    rounds = 3
    compiled.reset_cache()
    try:
        tape.configure(enabled=False)
        eager = converged_server(with_telemetry=False)
        eager.run(1)  # warm numpy / page caches
        start = time.perf_counter()
        eager.run(rounds)
        eager_s = (time.perf_counter() - start) / rounds
        eager.backend.close()

        tape.configure(enabled=True, compute_dtype="float64", fusion=True)
        taped = converged_server(with_telemetry=True)
        taped.run(1)  # capture round
        start = time.perf_counter()
        taped.run(rounds)
        tape_s = (time.perf_counter() - start) / rounds
        taped.backend.close()
    finally:
        tape.configure(enabled=False, compute_dtype="float64", fusion=False)
        telemetry.close()

    print(f"  eager:         {eager_s * 1e3:8.1f} ms/round")
    print(f"  tape + fusion: {tape_s * 1e3:8.1f} ms/round "
          f"({eager_s / tape_s:.2f}x)")

    summary = summarize_trace(load_events(log_path))
    tape_stats = summary.get("tape") or {}
    if tape_stats:
        print(
            f"  captures: {tape_stats['captured']}  replays: "
            f"{tape_stats['replayed']}  fallbacks: {tape_stats['fallbacks']}"
            f"  hit-rate: {tape_stats['hit_rate']:.1%}"
        )
    replay_ops = [
        o for o in summary.get("ops") or [] if str(o["op"]).startswith("tape:")
    ]
    if replay_ops:
        print("  per-op replay time (top 5):")
        for op in replay_ops[:5]:
            mean_us = 1e6 * op["total_s"] / max(op["count"], 1)
            print(
                f"    {op['op'][len('tape:'):]:<22} {op['count']:>5} calls  "
                f"{op['total_s'] * 1e3:7.1f} ms total  {mean_us:7.1f} us/call"
            )


if __name__ == "__main__":
    main()
