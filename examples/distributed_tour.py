#!/usr/bin/env python
"""Tour of the networked participant runtime (``repro.transport``).

Starts two worker daemons the way an operator would — ``python -m repro
serve`` subprocesses on OS-assigned localhost ports — then points a
short federated search at them with ``backend="socket"`` and explicit
``socket_workers`` addresses.  Afterwards it prints what moved on the
wire (measured bytes, task RTTs, per-round traffic) and shows that the
daemons survive the run: the backend disconnects from external workers
on close instead of shutting them down.  The run is traced
(``tracing_enabled`` + ``trace_ops``): afterwards it prints the
critical-path blame per round and exports a Chrome/Perfetto trace —
the equivalent of ``python -m repro trace run.jsonl --chrome out.json``.

Everything here also works with zero configuration: drop the
``socket_workers`` line (or set ``REPRO_BACKEND=socket``) and the
backend spawns and manages local daemons by itself.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.core import ExperimentConfig, FederatedModelSearch  # noqa: E402
from repro.telemetry import (  # noqa: E402
    Telemetry,
    export_chrome_trace,
    load_events,
    summarize_trace,
)
from repro.transport import READY_PREFIX  # noqa: E402


def start_daemon() -> tuple:
    """``python -m repro serve --port 0`` → (process, "host:port")."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--idle-timeout", "120"],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    line = proc.stdout.readline()  # REPRO-WORKER-READY <host> <port>
    assert line.startswith(READY_PREFIX), line
    _, host, port = line.split()
    return proc, f"{host}:{port}"


def main() -> None:
    print("starting two worker daemons ...")
    daemons = [start_daemon() for _ in range(2)]
    addresses = tuple(address for _, address in daemons)
    for proc, address in daemons:
        print(f"  worker pid={proc.pid} at {address}")

    log_path = Path(tempfile.mkdtemp(prefix="repro-tour-")) / "run.jsonl"
    config = ExperimentConfig.small(
        seed=0,
        num_participants=4,
        warmup_rounds=1,
        search_rounds=4,
        retrain_epochs=1,
        backend="socket",
        socket_workers=addresses,
        measure_wire_bytes=True,  # exact npz sizes alongside Fig. 7 estimate
        delta_dispatch=True,  # ship only changed params after round 1
        tracing_enabled=True,  # cross-process spans on every task
        trace_ops=True,  # per-op forward profile on the workers
        telemetry_log_path=str(log_path),
    )
    pipeline = FederatedModelSearch(config)
    print(f"\nsearching over {addresses} (backend={pipeline.backend.name}) ...")
    start = time.perf_counter()
    try:
        report = pipeline.run(retrain_mode="centralized")
    finally:
        pipeline.close()  # disconnects; external daemons stay up
    print(f"done in {time.perf_counter() - start:.1f}s wall clock")
    print(f"test accuracy: {report.test_accuracy:.4f}")

    # ------------------------------------------------------------------
    # What moved on the wire, from the telemetry the backend recorded.
    # ------------------------------------------------------------------
    metrics = report.metrics or {}
    sent = metrics.get("transport.bytes_sent", {}).get("value", 0)
    received = metrics.get("transport.bytes_received", {}).get("value", 0)
    rtt = metrics.get("transport.task_rtt_s", {})
    print("\nwire traffic:")
    print(f"  sent:     {sent / 1e3:,.1f} kB (tasks, frames + headers)")
    print(f"  received: {received / 1e3:,.1f} kB (updates)")
    if rtt.get("count"):
        print(
            f"  task RTT: mean {rtt['mean'] * 1e3:.1f} ms over "
            f"{rtt['count']} tasks (max {rtt['max'] * 1e3:.1f} ms)"
        )
    wire = metrics.get("transmission.wire_bytes", {})
    if wire.get("count"):
        print(
            f"  measured sub-model payload: mean {wire['mean'] / 1e3:.1f} kB "
            f"(exact npz size; analytic estimate "
            f"{report.mean_submodel_bytes / 1e3:.1f} kB)"
        )

    # ------------------------------------------------------------------
    # Delta dispatch: how much of the dispatched state the worker-side
    # caches absorbed (full syncs are first contact / resync rounds).
    # ------------------------------------------------------------------
    shipped = int(metrics.get("dispatch.delta_params", {}).get("value", 0))
    cached = int(metrics.get("dispatch.cached_params", {}).get("value", 0))
    full_syncs = int(metrics.get("dispatch.full_syncs", {}).get("value", 0))
    misses = int(metrics.get("dispatch.cache_misses", {}).get("value", 0))
    total = shipped + cached
    if total:
        print("\ndelta dispatch:")
        print(f"  params shipped: {shipped:,} of {total:,} dispatched")
        print(f"  served from worker caches: {cached:,} "
              f"({100.0 * cached / total:.1f}% cache hit)")
        print(f"  full syncs: {full_syncs}, cache misses: {misses}")

    # ------------------------------------------------------------------
    # Distributed tracing: merge the worker spans back out of the run
    # log, show where each round's wall time went, and export a Chrome
    # trace (same as `python -m repro trace run.jsonl --chrome out.json`).
    # ------------------------------------------------------------------
    pipeline.telemetry.close()  # flush the JSONL sink
    events = load_events(log_path)
    summary = summarize_trace(events)
    critical = summary.get("critical_path")
    if critical:
        blame = critical["blame"]
        print("\ncritical path blame across traced rounds:")
        for part, fraction in sorted(
            blame.items(), key=lambda kv: kv[1], reverse=True
        ):
            print(f"  {part:<9} {100.0 * fraction:5.1f}%")
        slowest = max(critical["rounds"], key=lambda r: r["wall_s"])
        print(
            f"  slowest round: {slowest['phase']} round {slowest['round']} "
            f"({slowest['wall_s'] * 1e3:.0f} ms, critical task on worker "
            f"{slowest['worker']})"
        )
    if summary.get("ops"):
        hottest = summary["ops"][0]
        print(
            f"hottest op: {hottest['op']} [{hottest['shape']}] — "
            f"{hottest['count']} calls, "
            f"{hottest['total_s'] * 1e3:.1f} ms total forward time"
        )
    chrome_path = log_path.with_suffix(".chrome.json")
    with open(chrome_path, "w") as handle:
        json.dump(export_chrome_trace(events), handle)
    print(f"chrome trace written to {chrome_path} "
          f"(open in chrome://tracing or ui.perfetto.dev)")

    # ------------------------------------------------------------------
    # The daemons are still alive — close() never shuts down workers it
    # did not spawn.  An operator stops them explicitly.
    # ------------------------------------------------------------------
    print("\ndaemon status after close():")
    for proc, address in daemons:
        state = "alive" if proc.poll() is None else f"exited({proc.poll()})"
        print(f"  {address}: {state}")
    for proc, _ in daemons:
        proc.send_signal(signal.SIGTERM)
    for proc, _ in daemons:
        proc.wait(timeout=10)
    print("daemons stopped.")


if __name__ == "__main__":
    main()
