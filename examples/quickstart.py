#!/usr/bin/env python
"""Quickstart: search, retrain, and evaluate in a dozen lines.

Runs the full four-phase pipeline of the paper on a small synthetic
CIFAR10 stand-in with 4 participants:

  P1  warm up the supernet weights (architecture frozen),
  P2  run the RL-based federated architecture search (Alg. 1),
  P3  retrain the searched architecture from scratch with FedAvg,
  P4  evaluate on the held-out test set.

Expected runtime: well under a minute on a laptop CPU.
"""

from repro import ExperimentConfig, FederatedModelSearch


def main() -> None:
    config = ExperimentConfig.small(
        dataset="cifar10",
        non_iid=True,  # the paper's motivating setting
        num_participants=4,
        warmup_rounds=10,
        search_rounds=40,
        fl_retrain_rounds=20,
        seed=0,
    )
    pipeline = FederatedModelSearch(config)

    print(f"participants: {config.num_participants}  (non-iid Dirichlet(0.5) shards)")
    print(f"supernet:     {pipeline.supernet.num_parameters():,} parameters")
    print()

    report = pipeline.run(retrain_mode="federated")

    print("searched architecture:")
    print(report.genotype.describe())
    print()
    print(f"sub-model payload (mean): {report.mean_submodel_bytes / 1e3:.1f} kB "
          f"vs supernet {pipeline.supernet.size_bytes() / 1e3:.1f} kB")
    print(f"searched-model parameters: {report.model_parameters:,}")
    print(f"test accuracy (P4):        {report.test_accuracy:.3f}")
    rewards = report.search_recorder.moving_average("train_accuracy", window=10)
    print(f"search reward curve:       {rewards[0]:.3f} -> {rewards[-1]:.3f}")


if __name__ == "__main__":
    main()
