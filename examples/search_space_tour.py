#!/usr/bin/env python
"""A tour of the DARTS search space this system searches over.

Walks through the pieces the paper assembles (Sec. IV-A): the 8 candidate
operations and their parameter costs, the cell DAG, the supernet, and how
a one-hot mask prunes it into the lightweight sub-model a participant
actually receives — the source of the paper's headline ~1/N efficiency.
"""

import numpy as np

from repro.controller import ArchitecturePolicy
from repro.nn import state_size_bytes
from repro.search_space import (
    PRIMITIVES,
    CellTopology,
    Supernet,
    SupernetConfig,
    make_operation,
)

CHANNELS = 8


def main() -> None:
    rng = np.random.default_rng(0)

    print("1. The 8 candidate operations (paper Fig. 1), at "
          f"{CHANNELS} channels:\n")
    print(f"   {'operation':<16} {'params':>8}")
    for name in PRIMITIVES:
        op = make_operation(name, CHANNELS, stride=1, rng=rng)
        print(f"   {name:<16} {op.num_parameters():>8,}")

    topology = CellTopology(steps=4)  # the paper's cell geometry
    print(f"\n2. Cell DAG with {topology.steps} intermediate nodes: "
          f"{topology.num_edges} edges")
    for node in range(2, topology.num_nodes):
        sources = [src for src, dst in topology.edges if dst == node]
        print(f"   node {node} <- nodes {sources}")
    print("   output = concat of all intermediate nodes")

    config = SupernetConfig(init_channels=8, num_cells=3, steps=2)
    supernet = Supernet(config, rng=rng)
    print(f"\n3. Supernet: {config.num_cells} cells "
          f"(reductions at {config.reduction_indices}), "
          f"{supernet.num_parameters():,} parameters, "
          f"{supernet.size_bytes() / 1e3:.0f} kB on the wire")

    policy = ArchitecturePolicy(config.num_edges, rng=rng)
    sizes = []
    for _ in range(20):
        mask = policy.sample_mask()
        sizes.append(state_size_bytes(supernet.submodel_state(mask)))
    sizes = np.array(sizes) / 1e3
    print(f"\n4. Sampled sub-models (20 draws from the uniform policy):")
    print(f"   size range {sizes.min():.0f}-{sizes.max():.0f} kB, "
          f"mean {sizes.mean():.0f} kB "
          f"= {sizes.mean() * 1e3 / supernet.size_bytes():.2f}x the supernet")
    print("\n   FedNAS ships the whole supernet to every participant; this")
    print("   system ships one sampled sub-model — the size gap above is")
    print("   the communication saving of paper Table V (0.27 vs 1.93 MB).")

    mask = policy.sample_mask()
    sub = supernet.extract_submodel(mask)
    print(f"\n5. One concrete sub-model (ops on the normal cell's edges):")
    for e, op_idx in enumerate(mask.normal):
        src, dst = supernet.config.topology.edges[e]
        print(f"   edge {src}->{dst}: {PRIMITIVES[op_idx]}")
    print(f"   -> {sub.num_parameters():,} parameters; parameter names are a")
    print("   strict subset of the supernet's, so the server scatters the")
    print("   returned gradients back by name (zeros for unsampled ops).")


if __name__ == "__main__":
    main()
