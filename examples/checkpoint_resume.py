#!/usr/bin/env python
"""Checkpointing a long search and resuming after a server restart.

The paper's search phase runs for thousands of rounds; a real deployment
must survive restarts.  This example searches for a while, checkpoints
the full server state (supernet weights, architecture parameters,
optimizer momentum, baseline, round counter), simulates a crash by
building a brand-new server, restores, and continues — then verifies the
resumed run picked up exactly where the original left off.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.checkpoint import restore_search_state, save_search_state
from repro.controller import ArchitecturePolicy
from repro.data import iid_partition, synth_cifar10
from repro.federated import FederatedSearchServer, Participant
from repro.reporting import ascii_curve, summarize_rounds
from repro.search_space import Supernet, SupernetConfig

CONFIG = SupernetConfig(num_classes=10, init_channels=4, num_cells=2, steps=1)


def build_server(seed: int) -> FederatedSearchServer:
    train, _ = synth_cifar10(seed=2, train_per_class=20, test_per_class=4, image_size=8)
    shards = iid_partition(train, 4, rng=np.random.default_rng(0))
    supernet = Supernet(CONFIG, rng=np.random.default_rng(seed))
    policy = ArchitecturePolicy(CONFIG.num_edges, rng=np.random.default_rng(seed + 1))
    participants = [
        Participant(k, s, batch_size=16, rng=np.random.default_rng(seed + 10 + k))
        for k, s in enumerate(shards)
    ]
    server = FederatedSearchServer(
        supernet, policy, participants, rng=np.random.default_rng(seed + 2)
    )
    server.config.theta_lr = 0.1
    server.theta_optimizer.lr = 0.1
    return server


def main() -> None:
    checkpoint = Path(tempfile.mkdtemp()) / "search.ckpt"

    print("phase 1: searching for 30 rounds, then checkpointing ...")
    server = build_server(seed=0)
    first_leg = server.run(30)
    save_search_state(server, checkpoint)
    print(f"  checkpoint written: {checkpoint} "
          f"({checkpoint.stat().st_size / 1e3:.1f} kB)")
    print(f"  state at save: round={server.round}, "
          f"baseline={server.baseline.value:.3f}")

    print("\nphase 2: 'server crash' — constructing a fresh server "
          "and restoring ...")
    resumed = build_server(seed=123)  # deliberately different init
    restore_search_state(resumed, checkpoint)
    print(f"  restored: round={resumed.round}, "
          f"baseline={resumed.baseline.value:.3f}")
    assert resumed.round == 30
    assert np.allclose(resumed.policy.alpha, server.policy.alpha)

    print("\nphase 3: continuing the search for 30 more rounds ...")
    second_leg = resumed.run(30)

    rewards = [r.mean_reward for r in first_leg + second_leg]
    print()
    print(ascii_curve(rewards, width=60, height=8,
                      label="search accuracy across the restart"))
    summary = summarize_rounds(first_leg + second_leg)
    print(f"\nfinal accuracy: {summary['final_accuracy']:.3f} over "
          f"{int(summary['rounds'])} rounds "
          f"({int(summary['fresh_updates'])} updates)")
    print("\nthe curve continues smoothly across round 30 — no retraining "
          "lost to the restart.")


if __name__ == "__main__":
    main()
